"""SequentialEngine / ConcurrentEngine under a RobustnessConfig.

Scripted faults give exact control: each test places one fault on one
block attempt and checks the engine's timing and bookkeeping to the
millisecond.
"""

import pytest

from repro.errors import SimulationError
from repro.robustness import (
    FaultKind,
    FaultPlan,
    LoadShedConfig,
    RetryPolicy,
    RobustnessConfig,
    ScriptedFault,
)
from repro.runtime.engine import SequentialEngine
from repro.runtime.executor import ConcurrentEngine, ContentionModel
from repro.runtime.metrics import robustness_totals
from repro.scheduling.policies import FIFOScheduler, SplitScheduler
from repro.scheduling.request import Request, TaskSpec
from repro.types import RequestClass


def spec(name="m", ext=10.0, blocks=None, cls=RequestClass.SHORT):
    return TaskSpec(
        name=name, ext_ms=ext, blocks_ms=blocks or (ext,), request_class=cls
    )


def arrivals(*items):
    """items: (time, name, ext, blocks)."""
    return [
        (t, Request(task=spec(name, ext, blocks), arrival_ms=t))
        for t, name, ext, blocks in items
    ]


def run_robust(cfg, *items, scheduler=None, keep_trace=False):
    eng = SequentialEngine(
        scheduler or FIFOScheduler(), keep_trace=keep_trace, robustness=cfg
    )
    return eng.run(arrivals(*items))


class TestInertEquivalence:
    def test_inert_config_matches_fault_free_run(self):
        items = [
            (0.0, "a", 10.0, (5.0, 5.0)),
            (2.0, "b", 4.0, None),
            (7.0, "c", 8.0, (4.0, 4.0)),
        ]
        plain = SequentialEngine(SplitScheduler()).run(arrivals(*items))
        inert = SequentialEngine(
            SplitScheduler(), robustness=RobustnessConfig()
        ).run(arrivals(*items))
        key = lambda r: (r.task_type, r.arrival_ms)
        for a, b in zip(
            sorted(plain.completed, key=key), sorted(inert.completed, key=key)
        ):
            assert a.finish_ms == b.finish_ms
            assert a.first_start_ms == b.first_start_ms
            assert a.preemptions == b.preemptions
        assert inert.retries == inert.stalls == 0
        assert inert.failed == inert.timed_out == inert.shed == []


class TestScriptedFail:
    CFG = RobustnessConfig(
        faults=FaultPlan(
            scripted=(ScriptedFault(FaultKind.FAIL, block_index=0, attempt=0),)
        ),
        retry=RetryPolicy(max_retries=2, backoff_base_ms=5.0),
    )

    def test_fail_then_retry_succeeds(self):
        res = run_robust(self.CFG, (0.0, "m", 10.0, None))
        # Block runs 0-10 and fails, parks 5 ms, reruns 15-25.
        assert len(res.completed) == 1
        assert res.completed[0].finish_ms == 25.0
        assert res.completed[0].retries == 1
        assert res.retries == 1 and res.fault_fails == 1

    def test_retries_exhausted_fails_request(self):
        cfg = RobustnessConfig(
            faults=FaultPlan(
                scripted=(ScriptedFault(FaultKind.FAIL, block_index=0),)
            ),
            retry=RetryPolicy(max_retries=1, backoff_base_ms=5.0),
        )
        res = run_robust(cfg, (0.0, "m", 10.0, None))
        assert res.completed == []
        assert len(res.failed) == 1
        assert res.failed[0].outcome == "failed"
        assert res.failed[0].retries == 2
        assert res.fault_fails == 2 and res.retries == 1

    def test_exponential_backoff_timing(self):
        cfg = RobustnessConfig(
            faults=FaultPlan(
                scripted=(
                    ScriptedFault(FaultKind.FAIL, block_index=0, attempt=0),
                    ScriptedFault(FaultKind.FAIL, block_index=0, attempt=1),
                )
            ),
            retry=RetryPolicy(
                max_retries=3, backoff_base_ms=4.0, backoff_factor=3.0
            ),
        )
        res = run_robust(cfg, (0.0, "m", 10.0, None))
        # 0-10 fail, +4 backoff, 14-24 fail, +12 backoff, 36-46 served.
        assert res.completed[0].finish_ms == 46.0
        assert res.completed[0].retries == 2

    def test_failed_block_rerun_recorded_in_trace(self):
        res = run_robust(
            self.CFG,
            (0.0, "m", 10.0, (5.0, 5.0)),
            scheduler=SplitScheduler(),
            keep_trace=True,
        )
        res.trace.verify()  # failed entries must not break contiguity
        entries = res.trace.entries
        assert [e.block_index for e in entries] == [0, 0, 1]
        assert [e.failed for e in entries] == [True, False, False]


class TestScriptedStallAndDrop:
    def test_stall_stretches_block(self):
        cfg = RobustnessConfig(
            faults=FaultPlan(
                scripted=(
                    ScriptedFault(FaultKind.STALL, block_index=0, stall_factor=3.0),
                )
            )
        )
        res = run_robust(cfg, (0.0, "m", 10.0, None))
        assert res.completed[0].finish_ms == 30.0
        assert res.stalls == 1

    def test_drop_fails_request_without_processor_time(self):
        cfg = RobustnessConfig(
            faults=FaultPlan(
                scripted=(ScriptedFault(FaultKind.DROP, task_type="a"),)
            )
        )
        res = run_robust(cfg, (0.0, "a", 10.0, None), (1.0, "b", 5.0, None))
        assert [r.task_type for r in res.failed] == ["a"]
        assert res.fault_drops == 1
        # "a" consumed no processor time, so "b" starts at its arrival.
        b = res.completed[0]
        assert b.first_start_ms == 1.0 and b.finish_ms == 6.0


class TestDeadlines:
    def test_late_finish_counts_as_timeout(self):
        cfg = RobustnessConfig(timeout_ms=5.0)
        res = run_robust(cfg, (0.0, "m", 10.0, None))
        assert res.completed == []
        assert len(res.timed_out) == 1
        assert res.timed_out[0].outcome == "timed_out"

    def test_queued_request_evicted_at_dispatch(self):
        cfg = RobustnessConfig(timeout_rr=2.0)
        res = run_robust(
            cfg, (0.0, "a", 20.0, None), (0.0, "b", 2.0, None)
        )
        # a serves 0-20 (deadline 40); b's deadline (4) passes while it
        # waits behind a, so it is evicted at dispatch without running.
        assert [r.task_type for r in res.completed] == ["a"]
        assert [r.task_type for r in res.timed_out] == ["b"]
        assert res.timed_out[0].first_start_ms is None

    def test_timeout_rr_uses_task_target(self):
        cfg = RobustnessConfig(timeout_rr=2.0)
        res = run_robust(
            cfg, (0.0, "a", 10.0, None), (0.0, "b", 10.0, None), (0.0, "c", 10.0, None)
        )
        # Deadlines are arrival + 2*10 = 20: a finishes at 10, b at 20,
        # c would finish at 30 > 20.
        assert sorted(r.task_type for r in res.completed) == ["a", "b"]
        assert [r.task_type for r in res.timed_out] == ["c"]

    def test_no_deadline_everything_served(self):
        cfg = RobustnessConfig()
        res = run_robust(cfg, *[(0.0, f"r{i}", 10.0, None) for i in range(5)])
        assert len(res.completed) == 5


class TestLoadShedding:
    def test_burst_sheds_excess(self):
        cfg = RobustnessConfig(
            load_shed=LoadShedConfig(max_queue_depth=1)
        )
        res = run_robust(
            cfg,
            (0.0, "a", 10.0, None),
            (0.0, "b", 10.0, None),
            (0.0, "c", 10.0, None),
        )
        assert [r.task_type for r in res.completed] == ["a"]
        assert sorted(r.task_type for r in res.shed) == ["b", "c"]
        for r in res.shed:
            assert r.outcome == "shed"

    def test_totals_reconcile(self):
        cfg = RobustnessConfig(
            load_shed=LoadShedConfig(max_queue_depth=2), timeout_ms=200.0
        )
        res = run_robust(
            cfg, *[(float(i), f"r{i}", 10.0, None) for i in range(8)]
        )
        totals = robustness_totals(res)
        assert totals["submitted"] == 8
        assert totals["served"] + totals["shed"] + totals["timed_out"] == 8


class TestConcurrentEngineRobust:
    def test_load_shed_rejected(self):
        from repro.hardware.presets import jetson_nano

        with pytest.raises(SimulationError, match="load shedding"):
            ConcurrentEngine(
                ContentionModel(jetson_nano()),
                robustness=RobustnessConfig(
                    load_shed=LoadShedConfig(max_queue_depth=4)
                ),
            )

    def test_scripted_drop(self):
        from repro.hardware.presets import jetson_nano

        cfg = RobustnessConfig(
            faults=FaultPlan(
                scripted=(ScriptedFault(FaultKind.DROP, task_type="a"),)
            )
        )
        eng = ConcurrentEngine(ContentionModel(jetson_nano()), robustness=cfg)
        res = eng.run(arrivals((0.0, "a", 10.0, None), (0.0, "b", 10.0, None)))
        assert [r.task_type for r in res.failed] == ["a"]
        assert [r.task_type for r in res.completed] == ["b"]
        assert res.fault_drops == 1

    def test_fail_retries_then_serves(self):
        from repro.hardware.presets import jetson_nano

        cfg = RobustnessConfig(
            faults=FaultPlan(
                scripted=(ScriptedFault(FaultKind.FAIL, attempt=0),)
            ),
            retry=RetryPolicy(max_retries=2, backoff_base_ms=5.0),
        )
        eng = ConcurrentEngine(ContentionModel(jetson_nano()), robustness=cfg)
        res = eng.run(arrivals((0.0, "m", 10.0, None)))
        assert len(res.completed) == 1
        assert res.completed[0].retries == 1
        assert res.retries == 1 and res.fault_fails == 1

    def test_inert_matches_fault_free(self):
        from repro.hardware.presets import jetson_nano

        items = [(0.0, "a", 10.0, None), (3.0, "b", 8.0, None)]
        plain = ConcurrentEngine(ContentionModel(jetson_nano())).run(
            arrivals(*items)
        )
        inert = ConcurrentEngine(
            ContentionModel(jetson_nano()), robustness=RobustnessConfig()
        ).run(arrivals(*items))
        fa = sorted((r.task_type, r.finish_ms) for r in plain.completed)
        fb = sorted((r.task_type, r.finish_ms) for r in inert.completed)
        assert fa == fb
