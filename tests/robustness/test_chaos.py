"""Chaos regression: a seeded stochastic FaultPlan through the engines.

The ISSUE-mandated scenario — 10% block failures, 5% stalls — must leave
the system fully accounted for: every submitted request reaches exactly
one terminal outcome, no request out-lives its deadline, retry counts
reconcile against the injector's issued faults, and the same seed yields
the same run down to the last finish time.
"""

import pytest

from repro.robustness import FaultPlan, RetryPolicy, RobustnessConfig
from repro.runtime.metrics import robustness_totals
from repro.runtime.simulator import simulate
from repro.runtime.workload import Scenario

CHAOS = RobustnessConfig(
    faults=FaultPlan(seed=11, fail_rate=0.10, stall_rate=0.05),
    retry=RetryPolicy(max_retries=2, backoff_base_ms=2.0),
    timeout_rr=40.0,
)
SMALL = Scenario("chaos-small", 160.0, "low", n_requests=120)


@pytest.fixture(scope="module")
def chaos_result():
    return simulate("split", SMALL, keep_trace=True, robustness=CHAOS)


class TestChaosRun:
    def test_totals_reconcile(self, chaos_result):
        totals = robustness_totals(chaos_result.engine_result)
        assert totals["submitted"] == 120
        assert (
            totals["served"]
            + totals["rejected"]
            + totals["shed"]
            + totals["failed"]
            + totals["timed_out"]
            == 120
        )

    def test_faults_actually_fired(self, chaos_result):
        totals = robustness_totals(chaos_result.engine_result)
        # 10% of a few hundred block attempts: failures must show up.
        assert totals["fault_fails"] > 0
        assert totals["stalls"] > 0

    def test_retry_counts_match_plan(self, chaos_result):
        """Every issued FAIL either became a retry or ended a request."""
        res = chaos_result.engine_result
        exhausted = res.fault_fails - res.retries
        assert exhausted >= 0
        # The plan has no drop_rate, so every failed request is an
        # exhausted-retries failure.
        assert res.fault_drops == 0
        assert len(res.failed) == exhausted
        for req in res.failed:
            assert req.retries > CHAOS.retry.max_retries

    def test_no_request_outlives_deadline(self, chaos_result):
        res = chaos_result.engine_result
        for req in res.completed:
            assert req.finish_ms <= CHAOS.deadline_ms(req) + 1e-9
        for req in res.timed_out:
            assert req.outcome == "timed_out"

    def test_every_request_terminal(self, chaos_result):
        res = chaos_result.engine_result
        for bucket, outcome in [
            (res.completed, "served"),
            (res.failed, "failed"),
            (res.timed_out, "timed_out"),
            (res.shed, "shed"),
        ]:
            for req in bucket:
                assert req.outcome == outcome

    def test_trace_verifies_under_faults(self, chaos_result):
        chaos_result.engine_result.trace.verify()

    def test_same_seed_identical_metrics(self):
        a = simulate("split", SMALL, robustness=CHAOS)
        b = simulate("split", SMALL, robustness=CHAOS)
        assert robustness_totals(a.engine_result) == robustness_totals(
            b.engine_result
        )
        fa = sorted((r.arrival_ms, r.finish_ms) for r in a.engine_result.completed)
        fb = sorted((r.arrival_ms, r.finish_ms) for r in b.engine_result.completed)
        assert fa == fb

    def test_different_fault_seed_changes_run(self):
        other = RobustnessConfig(
            faults=FaultPlan(seed=12, fail_rate=0.10, stall_rate=0.05),
            retry=CHAOS.retry,
            timeout_rr=CHAOS.timeout_rr,
        )
        a = simulate("split", SMALL, robustness=CHAOS)
        b = simulate("split", SMALL, robustness=other)
        fa = sorted((r.arrival_ms, r.finish_ms) for r in a.engine_result.completed)
        fb = sorted((r.arrival_ms, r.finish_ms) for r in b.engine_result.completed)
        assert fa != fb


class TestChaosDisabledIsByteIdentical:
    def test_inert_config_equals_no_config(self):
        plain = simulate("split", SMALL)
        inert = simulate("split", SMALL, robustness=RobustnessConfig())
        fa = [(r.arrival_ms, r.finish_ms) for r in plain.report.records]
        fb = [(r.arrival_ms, r.finish_ms) for r in inert.report.records]
        assert fa == fb

    @pytest.mark.parametrize("policy", ["rta", "clockwork"])
    def test_inert_config_other_policies(self, policy):
        plain = simulate(policy, SMALL)
        inert = simulate(policy, SMALL, robustness=RobustnessConfig())
        fa = [(r.arrival_ms, r.finish_ms) for r in plain.report.records]
        fb = [(r.arrival_ms, r.finish_ms) for r in inert.report.records]
        assert fa == fb


class TestChaosConcurrentEngine:
    def test_rta_chaos_reconciles(self):
        r = simulate("rta", SMALL, robustness=CHAOS)
        totals = robustness_totals(r.engine_result)
        assert totals["submitted"] == 120
        assert totals["fault_fails"] > 0
