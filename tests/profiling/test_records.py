"""ModelProfile prefix-sum tables and block-time computation."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import PartitionError
from repro.profiling.records import BlockProfile

from tests.conftest import make_profile


class TestModelProfile:
    def test_prefix_sums(self):
        p = make_profile([1.0, 2.0, 3.0])
        np.testing.assert_allclose(p.prefix_ms, [1.0, 3.0, 6.0])
        assert p.total_ms == 6.0
        assert p.n_ops == 3

    def test_arrays_readonly(self):
        p = make_profile([1.0, 2.0])
        with pytest.raises(ValueError):
            p.op_times_ms[0] = 9.0
        with pytest.raises(ValueError):
            p.prefix_ms[0] = 9.0

    def test_length_mismatch_rejected(self):
        with pytest.raises(PartitionError, match="n_ops - 1"):
            make_profile([1.0, 2.0], cut_costs=[0.5, 0.5])

    def test_negative_times_rejected(self):
        with pytest.raises(PartitionError, match="non-negative"):
            make_profile([1.0, -2.0])

    def test_block_time(self):
        p = make_profile([1.0, 2.0, 3.0, 4.0])
        assert p.block_time_ms(0, 3) == 10.0
        assert p.block_time_ms(1, 2) == 5.0
        assert p.block_time_ms(2, 2) == 3.0

    def test_block_time_out_of_range(self):
        p = make_profile([1.0, 2.0])
        with pytest.raises(PartitionError):
            p.block_time_ms(1, 2)
        with pytest.raises(PartitionError):
            p.block_time_ms(-1, 0)

    def test_block_times_no_cuts(self):
        p = make_profile([1.0, 2.0, 3.0])
        np.testing.assert_allclose(p.block_times_for_cuts(()), [6.0])

    def test_block_times_with_overhead_on_downstream(self):
        p = make_profile([1.0, 2.0, 3.0], cut_costs=[0.5, 0.25])
        times = p.block_times_for_cuts((0,))
        np.testing.assert_allclose(times, [1.0, 5.5])
        times = p.block_times_for_cuts((0, 1))
        np.testing.assert_allclose(times, [1.0, 2.5, 3.25])

    @given(
        st.lists(
            st.floats(min_value=0.01, max_value=100, allow_nan=False),
            min_size=3,
            max_size=40,
        ),
        st.data(),
    )
    def test_block_times_cover_everything(self, op_times, data):
        """sum(block times) == total + sum(cut overheads) for any cuts."""
        costs = [0.5] * (len(op_times) - 1)
        p = make_profile(op_times, cut_costs=costs)
        k = data.draw(st.integers(min_value=0, max_value=min(3, p.n_ops - 1)))
        cuts = tuple(
            sorted(
                data.draw(
                    st.sets(
                        st.integers(0, p.n_ops - 2), min_size=k, max_size=k
                    )
                )
            )
        )
        times = p.block_times_for_cuts(cuts)
        assert len(times) == len(cuts) + 1
        expected = p.total_ms + 0.5 * len(cuts)
        assert times.sum() == pytest.approx(expected, rel=1e-9)


class TestBlockProfile:
    def test_valid(self):
        b = BlockProfile("m", 0, (0, 5), 3.0, 0, 128)
        assert b.exec_ms == 3.0

    def test_negative_exec_rejected(self):
        with pytest.raises(PartitionError):
            BlockProfile("m", 0, (0, 5), -1.0, 0, 0)

    def test_bad_range_rejected(self):
        with pytest.raises(PartitionError):
            BlockProfile("m", 0, (5, 2), 1.0, 0, 0)
