"""Profile persistence."""

import numpy as np
import pytest

from repro.errors import SerializationError
from repro.hardware.presets import jetson_nano
from repro.profiling.profiler import Profiler
from repro.profiling.store import ProfileStore, dumps_profile, loads_profile
from repro.zoo.registry import get_model

from tests.conftest import make_profile


def test_roundtrip_string():
    p = make_profile([1.0, 2.5, 3.0], cut_costs=[0.1, 0.2], name="m", device="d")
    q = loads_profile(dumps_profile(p))
    assert q.model_name == "m" and q.device_name == "d"
    np.testing.assert_allclose(q.op_times_ms, p.op_times_ms)
    np.testing.assert_allclose(q.cut_cost_ms, p.cut_cost_ms)


def test_bad_json():
    with pytest.raises(SerializationError, match="JSON"):
        loads_profile("nope")


def test_bad_schema():
    with pytest.raises(SerializationError, match="schema"):
        loads_profile('{"schema": 42}')


def test_missing_field():
    with pytest.raises(SerializationError, match="missing"):
        loads_profile('{"schema": 1, "model_name": "m"}')


class TestStore:
    def test_save_load(self, tmp_path):
        store = ProfileStore(tmp_path)
        p = make_profile([1.0, 2.0], name="m", device="dev")
        store.save(p)
        q = store.load("m", "dev")
        assert q.total_ms == p.total_ms

    def test_load_absent(self, tmp_path):
        store = ProfileStore(tmp_path)
        with pytest.raises(SerializationError, match="no stored profile"):
            store.load("ghost", "dev")

    def test_get_or_profile_caches(self, tmp_path):
        store = ProfileStore(tmp_path)
        profiler = Profiler(jetson_nano())
        g = get_model("googlenet", cached=True)
        first = store.get_or_profile(g, profiler)
        assert store.list_profiles() == [("googlenet", "jetson-nano")]
        second = store.get_or_profile(g, profiler)
        np.testing.assert_allclose(second.op_times_ms, first.op_times_ms)

    def test_get_or_profile_detects_stale(self, tmp_path):
        store = ProfileStore(tmp_path)
        profiler = Profiler(jetson_nano())
        g = get_model("googlenet")  # fresh copy
        store.get_or_profile(g, profiler)
        # Mutate the graph: the stored profile is stale and re-profiled.
        from repro.graphs.operator import Operator
        from repro.types import OpType

        out = g.output_tensors[0]
        g.add(Operator("extra", OpType.RELU, (out,), (out.with_name("x2"),)))
        fresh = store.get_or_profile(g, profiler)
        assert fresh.n_ops == len(g)

    def test_list_profiles_sorted(self, tmp_path):
        store = ProfileStore(tmp_path)
        store.save(make_profile([1.0, 2.0], name="b", device="d"))
        store.save(make_profile([1.0, 2.0], name="a", device="d"))
        assert store.list_profiles() == [("a", "d"), ("b", "d")]

    def test_get_or_profile_detects_stale_same_op_count(self, tmp_path):
        """Content-fingerprint staleness: a different graph with the same
        name and op count must be re-profiled, not served from disk."""
        from tests.graphs.test_graph import linear_graph

        store = ProfileStore(tmp_path)
        profiler = Profiler(jetson_nano())
        first = store.get_or_profile(linear_graph(4, width=10), profiler)
        second = store.get_or_profile(linear_graph(4, width=1000), profiler)
        assert second.n_ops == first.n_ops
        assert second.total_ms != first.total_ms

    def test_corrupt_file_reprofiles(self, tmp_path):
        store = ProfileStore(tmp_path)
        profiler = Profiler(jetson_nano())
        g = get_model("googlenet", cached=True)
        store.get_or_profile(g, profiler)
        path = store._path(g.name, profiler.device.name)
        path.write_text("{not json", encoding="utf-8")
        fresh = store.get_or_profile(g, profiler)
        assert fresh.n_ops == len(g)
        # The corrupt entry was overwritten with a valid one.
        assert store.load(g.name, profiler.device.name).n_ops == len(g)


class TestPlanStore:
    def _profile(self):
        return make_profile(
            [4.0, 1.0, 3.0, 2.0, 5.0, 1.0, 2.0, 4.0],
            cut_costs=[0.5] * 7,
            name="m",
            device="d",
        )

    def test_ga_search_roundtrips(self, tmp_path):
        from repro.profiling.store import PlanStore
        from repro.splitting.genetic import GAConfig
        from repro.splitting.selection import ga_search

        store = PlanStore(tmp_path)
        profile = self._profile()
        cfg = GAConfig(seed=7)
        fresh = ga_search(profile, 3, config=cfg, store=store)
        assert len(store) == 1
        cached = ga_search(profile, 3, config=cfg, store=store)
        assert cached.cuts == fresh.cuts
        assert cached.fitness == fresh.fitness
        assert cached.sigma_ms == fresh.sigma_ms
        assert tuple(cached.partition.block_times_ms) == tuple(
            fresh.partition.block_times_ms
        )
        # Cache hits skip the per-generation history.
        assert cached.history == ()

    def test_config_change_invalidates(self, tmp_path):
        from repro.profiling.store import PlanStore
        from repro.splitting.genetic import GAConfig
        from repro.splitting.selection import ga_search

        store = PlanStore(tmp_path)
        profile = self._profile()
        ga_search(profile, 3, config=GAConfig(seed=7), store=store)
        ga_search(profile, 3, config=GAConfig(seed=8), store=store)
        assert len(store) == 2  # different config -> different key

    def test_profile_change_invalidates(self, tmp_path):
        from repro.profiling.store import PlanStore, plan_key
        from repro.splitting.genetic import GAConfig

        cfg = GAConfig(seed=7)
        a = plan_key(self._profile(), {"seed": cfg.seed}, 3)
        other = make_profile(
            [4.0, 1.0, 3.0, 2.0, 5.0, 1.0, 2.0, 4.5],
            cut_costs=[0.5] * 7,
            name="m",
            device="d",
        )
        b = plan_key(other, {"seed": cfg.seed}, 3)
        assert a != b

    def test_corrupt_entry_degrades_to_miss(self, tmp_path):
        from repro.profiling.store import PlanStore, plan_key
        from repro.splitting.genetic import GAConfig
        from repro.splitting.selection import ga_search

        store = PlanStore(tmp_path)
        profile = self._profile()
        cfg = GAConfig(seed=7)
        fresh = ga_search(profile, 3, config=cfg, store=store)
        from dataclasses import asdict

        key = plan_key(profile, asdict(cfg), 3)
        store._path(key).write_text("garbage", encoding="utf-8")
        assert store.load(key) is None
        again = ga_search(profile, 3, config=cfg, store=store)
        assert again.cuts == fresh.cuts  # GA is seeded: same answer

    def test_schema_mismatch_is_miss(self, tmp_path):
        from repro.profiling.store import PlanStore

        store = PlanStore(tmp_path)
        store._path("k").write_text(
            '{"schema": 99, "plan": {"cuts": [1]}}', encoding="utf-8"
        )
        assert store.load("k") is None

    def test_clear_and_len(self, tmp_path):
        from repro.profiling.store import PlanStore

        store = PlanStore(tmp_path)
        store.save("k1", {"cuts": [1]})
        store.save("k2", {"cuts": [2]})
        assert len(store) == 2
        store.clear()
        assert len(store) == 0


class TestCacheRoot:
    def test_default(self, monkeypatch):
        import repro.profiling.store as mod

        monkeypatch.delenv(mod.CACHE_DIR_ENV, raising=False)
        assert mod.cache_root() == mod.Path(".split-cache")

    def test_override(self, monkeypatch, tmp_path):
        import repro.profiling.store as mod

        monkeypatch.setenv(mod.CACHE_DIR_ENV, str(tmp_path / "c"))
        assert mod.cache_root() == tmp_path / "c"
        assert mod.default_plan_store().root == tmp_path / "c" / "plans"
        assert mod.default_profile_store().root == tmp_path / "c" / "profiles"

    def test_empty_disables(self, monkeypatch):
        import repro.profiling.store as mod

        monkeypatch.setenv(mod.CACHE_DIR_ENV, "")
        assert mod.cache_root() is None
        assert mod.default_plan_store() is None
        assert mod.default_profile_store() is None
