"""Profile persistence."""

import numpy as np
import pytest

from repro.errors import SerializationError
from repro.hardware.presets import jetson_nano
from repro.profiling.profiler import Profiler
from repro.profiling.store import ProfileStore, dumps_profile, loads_profile
from repro.zoo.registry import get_model

from tests.conftest import make_profile


def test_roundtrip_string():
    p = make_profile([1.0, 2.5, 3.0], cut_costs=[0.1, 0.2], name="m", device="d")
    q = loads_profile(dumps_profile(p))
    assert q.model_name == "m" and q.device_name == "d"
    np.testing.assert_allclose(q.op_times_ms, p.op_times_ms)
    np.testing.assert_allclose(q.cut_cost_ms, p.cut_cost_ms)


def test_bad_json():
    with pytest.raises(SerializationError, match="JSON"):
        loads_profile("nope")


def test_bad_schema():
    with pytest.raises(SerializationError, match="schema"):
        loads_profile('{"schema": 42}')


def test_missing_field():
    with pytest.raises(SerializationError, match="missing"):
        loads_profile('{"schema": 1, "model_name": "m"}')


class TestStore:
    def test_save_load(self, tmp_path):
        store = ProfileStore(tmp_path)
        p = make_profile([1.0, 2.0], name="m", device="dev")
        store.save(p)
        q = store.load("m", "dev")
        assert q.total_ms == p.total_ms

    def test_load_absent(self, tmp_path):
        store = ProfileStore(tmp_path)
        with pytest.raises(SerializationError, match="no stored profile"):
            store.load("ghost", "dev")

    def test_get_or_profile_caches(self, tmp_path):
        store = ProfileStore(tmp_path)
        profiler = Profiler(jetson_nano())
        g = get_model("googlenet", cached=True)
        first = store.get_or_profile(g, profiler)
        assert store.list_profiles() == [("googlenet", "jetson-nano")]
        second = store.get_or_profile(g, profiler)
        np.testing.assert_allclose(second.op_times_ms, first.op_times_ms)

    def test_get_or_profile_detects_stale(self, tmp_path):
        store = ProfileStore(tmp_path)
        profiler = Profiler(jetson_nano())
        g = get_model("googlenet")  # fresh copy
        store.get_or_profile(g, profiler)
        # Mutate the graph: the stored profile is stale and re-profiled.
        from repro.graphs.operator import Operator
        from repro.types import OpType

        out = g.output_tensors[0]
        g.add(Operator("extra", OpType.RELU, (out,), (out.with_name("x2"),)))
        fresh = store.get_or_profile(g, profiler)
        assert fresh.n_ops == len(g)

    def test_list_profiles_sorted(self, tmp_path):
        store = ProfileStore(tmp_path)
        store.save(make_profile([1.0, 2.0], name="b", device="d"))
        store.save(make_profile([1.0, 2.0], name="a", device="d"))
        assert store.list_profiles() == [("a", "d"), ("b", "d")]
