"""Profiler: graph + device -> calibrated profile and block records."""

import pytest

from repro.hardware.presets import jetson_nano
from repro.profiling.profiler import Profiler
from repro.zoo.registry import get_model


@pytest.fixture(scope="module")
def profiler():
    return Profiler(jetson_nano())


def test_profile_shape_and_calibration(profiler):
    g = get_model("resnet50", cached=True)
    p = profiler.profile(g)
    assert p.n_ops == len(g)
    assert len(p.cut_cost_ms) == len(g) - 1
    assert p.total_ms == pytest.approx(28.35)
    assert p.model_name == "resnet50"
    assert p.device_name == "jetson-nano"


def test_profile_explicit_target(profiler):
    g = get_model("vgg19", cached=True)
    p = profiler.profile(g, target_total_ms=50.0)
    assert p.total_ms == pytest.approx(50.0)


def test_cut_costs_reflect_crossing_bytes(profiler):
    g = get_model("vgg19", cached=True)
    p = profiler.profile(g)
    # Early VGG cuts cross 224x224x64 activations; late ones tiny FC vectors.
    assert p.cut_cost_ms[0] > p.cut_cost_ms[-1]


def test_profile_blocks_records(profiler):
    g = get_model("resnet50", cached=True)
    cuts = (40, 80)
    records = profiler.profile_blocks(g, cuts)
    assert len(records) == 3
    assert records[0].op_range == (0, 40)
    assert records[1].op_range == (41, 80)
    assert records[2].op_range == (81, len(g) - 1)
    # Boundary bytes chain: block i's out == block i+1's in.
    assert records[0].boundary_out_bytes == records[1].boundary_in_bytes
    assert records[0].boundary_in_bytes == 0
    assert records[-1].boundary_out_bytes == 0
    total = sum(r.exec_ms for r in records)
    p = profiler.profile(g)
    assert total == pytest.approx(
        p.total_ms + p.cut_cost_ms[40] + p.cut_cost_ms[80]
    )
