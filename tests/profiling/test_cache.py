"""ProfileCache memoisation semantics."""

from repro.hardware.presets import jetson_nano
from repro.profiling.cache import ProfileCache
from repro.zoo.registry import get_model


def test_cache_hits_same_object():
    cache = ProfileCache(jetson_nano())
    g = get_model("googlenet", cached=True)
    a = cache.get(g)
    b = cache.get(g)
    assert a is b
    assert len(cache) == 1


def test_cache_distinguishes_targets():
    cache = ProfileCache(jetson_nano())
    g = get_model("googlenet", cached=True)
    a = cache.get(g)
    b = cache.get(g, target_total_ms=99.0)
    assert a is not b
    assert len(cache) == 2


def test_cache_invalidates_on_op_count_change():
    cache = ProfileCache(jetson_nano())
    g = get_model("googlenet")  # fresh, mutable copy
    a = cache.get(g)
    from repro.graphs.operator import Operator
    from repro.graphs.tensor import TensorSpec
    from repro.types import OpType

    last_out = g.output_tensors[0]
    g.add(
        Operator(
            "extra",
            OpType.RELU,
            (last_out,),
            (TensorSpec("extra_out", last_out.shape),),
        )
    )
    b = cache.get(g)
    assert b is not a
    assert b.n_ops == a.n_ops + 1


def test_clear():
    cache = ProfileCache(jetson_nano())
    cache.get(get_model("googlenet", cached=True))
    cache.clear()
    assert len(cache) == 0


def test_cache_distinguishes_same_name_same_op_count():
    """Regression: the key is the graph's content hash, so two graphs that
    share a name and an operator count but compute different things must
    not share a profile (the old (name, device, target) + n_ops check
    returned the stale one)."""
    from tests.graphs.test_graph import linear_graph

    cache = ProfileCache(jetson_nano())
    small = linear_graph(4, width=10)
    big = linear_graph(4, width=1000)
    assert small.name == big.name and len(small) == len(big)
    a = cache.get(small)
    b = cache.get(big)
    assert b is not a
    assert len(cache) == 2
    assert a.total_ms != b.total_ms
