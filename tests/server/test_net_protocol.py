"""Property suite for the wire codec (:mod:`repro.server.protocol`).

The decoder sits directly on untrusted bytes, so its contract is pinned
adversarially with Hypothesis: every frame round-trips through arbitrary
TCP-style re-chunking, and every malformed input — truncation, hostile
length prefixes, unknown types, garbage payloads — maps to a *typed*
:class:`ProtocolError` subclass. No input may hang, crash with an
untyped exception, or desynchronise silently.
"""

from __future__ import annotations

import json
import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.server.protocol import (
    MAX_FRAME,
    BadFrame,
    FrameDecoder,
    FrameTooLarge,
    FrameType,
    ProtocolError,
    TruncatedFrame,
    decode_frames,
    encode_frame,
)

# JSON-representable payload dicts (finite floats only: NaN/inf are not
# valid JSON and the codec uses strict JSON on the wire).
_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**53), max_value=2**53),
    st.floats(allow_nan=False, allow_infinity=False, width=64),
    st.text(max_size=40),
)
_values = st.recursive(
    _scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(st.text(max_size=10), children, max_size=4),
    ),
    max_leaves=12,
)
_payloads = st.dictionaries(st.text(max_size=10), _values, max_size=6)
_ftypes = st.sampled_from(list(FrameType))


def _chunks(data: bytes, cut_points: list[int]) -> list[bytes]:
    """Split ``data`` at the given relative positions (TCP re-chunking)."""
    cuts = sorted({min(c % (len(data) + 1), len(data)) for c in cut_points})
    out, prev = [], 0
    for cut in cuts:
        out.append(data[prev:cut])
        prev = cut
    out.append(data[prev:])
    return out


# ------------------------------------------------------------- round trips
@settings(max_examples=200)
@given(
    frames=st.lists(st.tuples(_ftypes, _payloads), min_size=1, max_size=5),
    cut_points=st.lists(st.integers(min_value=0), max_size=10),
)
def test_roundtrip_survives_arbitrary_chunking(frames, cut_points):
    wire = b"".join(encode_frame(f, p) for f, p in frames)
    decoder = FrameDecoder()
    decoded = []
    for chunk in _chunks(wire, cut_points):
        decoded.extend(decoder.feed(chunk))
    decoder.eof()
    assert decoded == [
        (f, json.loads(json.dumps(p))) for f, p in frames
    ]
    assert decoder.pending_bytes == 0


@given(ftype=_ftypes)
def test_empty_payload_decodes_to_empty_dict(ftype):
    assert list(decode_frames(encode_frame(ftype, None))) == [(ftype, {})]


# ---------------------------------------------------------- malformed input
@settings(max_examples=100)
@given(
    frames=st.lists(st.tuples(_ftypes, _payloads), min_size=1, max_size=3),
    drop=st.integers(min_value=1),
)
def test_truncated_stream_raises_at_eof(frames, drop):
    wire = b"".join(encode_frame(f, p) for f, p in frames)
    cut = len(wire) - 1 - (drop % len(wire))
    decoder = FrameDecoder()
    decoder.feed(wire[:cut])
    if decoder.pending_bytes:
        with pytest.raises(TruncatedFrame):
            decoder.eof()
    else:  # the cut landed exactly on a frame boundary
        decoder.eof()


@given(length=st.integers(min_value=MAX_FRAME + 1, max_value=2**32 - 1))
def test_hostile_length_prefix_refused_before_buffering(length):
    decoder = FrameDecoder()
    with pytest.raises(FrameTooLarge):
        decoder.feed(struct.pack("!I", length))
    # The body never followed; the oversized header alone must trip it.


def test_zero_length_frame_is_bad():
    with pytest.raises(BadFrame):
        FrameDecoder().feed(struct.pack("!I", 0))


@given(type_byte=st.integers(min_value=0, max_value=255))
def test_unknown_type_bytes_are_bad_frames(type_byte):
    known = {int(f) for f in FrameType}
    wire = struct.pack("!I", 1) + bytes([type_byte])
    decoder = FrameDecoder()
    if type_byte in known:
        assert decoder.feed(wire) == [(FrameType(type_byte), {})]
    else:
        with pytest.raises(BadFrame):
            decoder.feed(wire)


@settings(max_examples=200)
@given(garbage=st.binary(min_size=0, max_size=200))
def test_garbage_never_crashes_untyped(garbage):
    """Arbitrary bytes either decode, stay pending, or raise a typed
    ProtocolError — never KeyError/UnicodeDecodeError/struct.error."""
    decoder = FrameDecoder()
    try:
        decoder.feed(garbage)
        decoder.eof()
    except ProtocolError:
        pass


@given(body=st.binary(min_size=1, max_size=50))
def test_non_json_payloads_are_bad_frames(body):
    try:
        payload = json.loads(body.decode("utf-8"))
        is_valid = isinstance(payload, dict)
    except (UnicodeDecodeError, json.JSONDecodeError):
        is_valid = False
    wire = struct.pack("!I", 1 + len(body)) + bytes([int(FrameType.INFER)]) + body
    decoder = FrameDecoder()
    if is_valid:
        decoder.feed(wire)
    else:
        with pytest.raises(BadFrame):
            decoder.feed(wire)


def test_poisoned_decoder_keeps_raising():
    decoder = FrameDecoder()
    with pytest.raises(BadFrame):
        decoder.feed(struct.pack("!I", 1) + b"\xff")
    # A poisoned stream offset is untrustworthy: even a perfectly valid
    # frame must be refused afterwards.
    good = encode_frame(FrameType.INFER, {"id": 1})
    with pytest.raises(ProtocolError):
        decoder.feed(good)


def test_encode_refuses_oversized_frames():
    with pytest.raises(FrameTooLarge):
        encode_frame(FrameType.INFER, {"pad": "x" * MAX_FRAME})


def test_outcome_codes_cover_responder_vocabulary():
    from repro.server.protocol import OUTCOME_CODES

    assert set(OUTCOME_CODES) == {"rejected", "shed", "failed", "timed_out"}
