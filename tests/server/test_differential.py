"""Differential test: the threaded SplitServer against the discrete-event
simulator on the same trace.

The server's arrival times come from a scaled wall clock, so they can
never be bit-equal to a simulated schedule. The trace is therefore shaped
to be timing-robust: one long vgg19 request is submitted first and the
rest of the burst arrives while its first block (~36 sim-ms) holds the
processor, so every scheduling decision happens at a block boundary with
wide margins. Both systems must then agree on the *observable* outcomes:
which requests were served, the completion order of task types, and the
per-request block plans.
"""

import time

import pytest

from repro.runtime.simulator import simulate_items
from repro.runtime.workload import WorkloadItem
from repro.server.server import SplitServer
from repro.zoo.registry import get_model

TIME_SCALE = 1e-4  # 1 sim-ms = 0.1 ms wall: coarse enough to beat jitter
BURST = ["yolov2", "yolov2", "yolov2", "vgg19"]


@pytest.fixture(scope="module")
def live_run():
    srv = SplitServer(time_scale=TIME_SCALE)
    srv.deploy(get_model("yolov2"))
    srv.deploy(get_model("vgg19"))
    with srv:
        first = ("vgg19", srv.submit("vgg19"))
        # Let the long request take the processor; its first block spans
        # ~3.6 ms of wall time, so a 1 ms nap lands the burst inside it.
        time.sleep(10 * TIME_SCALE)
        handles = [first] + [(m, srv.submit(m)) for m in BURST]
        srv.drain(timeout_s=60.0)
    return srv, handles


@pytest.fixture(scope="module")
def sim_run():
    items = [WorkloadItem(0.0, "vgg19")] + [
        WorkloadItem(10.0 + 0.5 * i, m) for i, m in enumerate(BURST)
    ]
    return simulate_items("split", items, keep_trace=True)


def test_all_served_in_both(live_run, sim_run):
    _, handles = live_run
    assert all(h.outcome == "served" for _, h in handles)
    assert len(sim_run.engine_result.completed) == len(handles)
    assert sim_run.report.n_dropped == 0


def test_completion_type_order_agrees(live_run, sim_run):
    srv, handles = live_run
    live_order = [
        r.model for r in sorted(srv.responder.completed, key=lambda r: r.finish_ms)
    ]
    sim_order = [
        r.task_type
        for r in sorted(
            sim_run.engine_result.completed, key=lambda r: r.finish_ms
        )
    ]
    assert live_order == sim_order
    # The shorts burst-preempts the long request at its block boundary in
    # both systems: every yolov2 finishes before any vgg19.
    assert live_order[:3] == ["yolov2"] * 3


def test_per_request_block_plans_agree(live_run, sim_run):
    srv, handles = live_run
    live_plans = {}
    for model, handle in handles:
        live_plans.setdefault(model, []).append(len(handle._request.plan_ms))
    sim_plans = {}
    for r in sim_run.engine_result.completed:
        sim_plans.setdefault(r.task_type, []).append(len(r.plan_ms))
    assert {k: sorted(v) for k, v in live_plans.items()} == {
        k: sorted(v) for k, v in sim_plans.items()
    }


def test_total_blocks_executed_agree(live_run, sim_run):
    srv, _ = live_run
    assert srv.assigner.blocks_executed == len(sim_run.engine_result.trace)


def test_preemption_counts_agree(live_run, sim_run):
    """Both systems preempt the long request the same number of times:
    switching away from it at block boundaries is the paper's mechanism
    and must survive the threaded implementation."""
    srv, handles = live_run
    live_by_req = sorted(
        (r.model, r.preemptions) for r in srv.responder.completed
    )
    sim_by_req = sorted(
        (r.task_type, r.preemptions)
        for r in sim_run.engine_result.completed
    )
    assert live_by_req == sim_by_req
