"""Server concurrency stress: many client threads submitting in parallel.

The paper's responder runs on its own thread with locked async r/w; this
test drives the pipeline from several submitter threads at once and checks
nothing is lost, duplicated, or left dangling.
"""

import threading

import pytest

from repro.server.server import SplitServer
from repro.zoo.registry import get_model


@pytest.fixture
def server():
    srv = SplitServer(time_scale=1e-6)
    srv.deploy(get_model("yolov2"))
    srv.deploy(get_model("googlenet"))
    srv.deploy(get_model("resnet50"))
    yield srv
    srv.stop()


def test_concurrent_submitters(server):
    server.start()
    n_threads = 6
    per_thread = 15
    handles_lock = threading.Lock()
    all_handles = []
    errors = []

    def client(tid: int) -> None:
        models = ("yolov2", "googlenet", "resnet50")
        try:
            mine = [
                server.submit(models[(tid + i) % 3]) for i in range(per_thread)
            ]
            with handles_lock:
                all_handles.extend(mine)
        except Exception as exc:  # pragma: no cover - fail loudly
            errors.append(exc)

    threads = [threading.Thread(target=client, args=(t,)) for t in range(n_threads)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=10.0)
    assert not errors
    server.drain(timeout_s=60.0)

    results = [h.result(timeout_s=2.0) for h in all_handles]
    assert len(results) == n_threads * per_thread
    # No duplicate completions, none in flight, bookkeeping consistent.
    ids = [r.request_id for r in results]
    assert len(set(ids)) == len(ids)
    stats = server.stats()
    assert stats["completed"] == len(results)
    assert stats["in_flight"] == 0
    assert stats["queue_depth"] == 0
    # Causality on every result.
    for r in results:
        assert r.finish_ms >= r.arrival_ms
        assert r.e2e_ms >= 0.9 * {"yolov2": 10.8, "googlenet": 13.2, "resnet50": 28.35}[r.model] * 0.5


def test_submit_while_draining(server):
    server.start()
    first = [server.submit("yolov2") for _ in range(5)]
    server.drain(timeout_s=10.0)
    second = [server.submit("googlenet") for _ in range(5)]
    server.drain(timeout_s=10.0)
    for h in first + second:
        assert h.result(timeout_s=1.0)
    assert server.stats()["completed"] == 10
