"""ScaledClock behaviour."""

import time

import pytest

from repro.server.clock import ScaledClock


def test_invalid_scale():
    with pytest.raises(ValueError):
        ScaledClock(scale=0.0)


def test_monotonic():
    clock = ScaledClock(scale=1e-6)
    a = clock.now_ms()
    b = clock.now_ms()
    assert b >= a


def test_scaling():
    clock = ScaledClock(scale=1e-4)  # 10000 sim-ms per real second
    t0 = clock.now_ms()
    time.sleep(0.02)
    elapsed = clock.now_ms() - t0
    assert 150 <= elapsed <= 2000  # ~200 sim-ms with generous slack


def test_sleep_ms_blocks_roughly():
    clock = ScaledClock(scale=1e-4)
    t0 = time.monotonic()
    clock.sleep_ms(100)  # = 10 real ms
    assert time.monotonic() - t0 >= 0.009


def test_sleep_nonpositive_noop():
    clock = ScaledClock(scale=1.0)
    t0 = time.monotonic()
    clock.sleep_ms(0)
    clock.sleep_ms(-5)
    assert time.monotonic() - t0 < 0.05
