"""Backpressure and misbehaving-client robustness.

Two hostile clients attack a server configured with deliberately small
bounds (tiny socket send buffer, 8-slot outbound queues, a 16-request
in-flight cap):

* a **slow reader** that firehoses infer frames with kilobyte echo
  padding and never reads a byte — its TCP window fills, its writer task
  stalls, its bounded queue overflows, and the overflow is *dropped and
  counted* rather than growing server memory;
* a **flooder** whose submissions past the in-flight cap are refused
  immediately with ``backpressure`` error frames.

The pinned property is isolation: while both attacks are in progress a
healthy client on the same server gets every one of its requests served
and can read the stats frame, which reports the drop/rejection counts.
"""

from __future__ import annotations

import asyncio
import socket

import pytest

from repro.server.client import AsyncNetClient
from repro.server.net import NetServer
from repro.server.protocol import FrameType, encode_frame

pytestmark = pytest.mark.net(timeout_s=90)

MODELS = ("yolov2",)
PAD = "x" * 1024  # echoed into every reply frame: ~1 KiB on the wire
N_FLOOD = 400


def _flood_blob() -> bytes:
    return b"".join(
        encode_frame(
            FrameType.INFER, {"id": i, "model": "yolov2", "echo": PAD}
        )
        for i in range(N_FLOOD)
    )


def _slow_reader_socket(port: int) -> socket.socket:
    """Connect with a tiny receive buffer and never read."""
    sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    sock.setsockopt(socket.SOL_SOCKET, socket.SO_RCVBUF, 4096)
    sock.connect(("127.0.0.1", port))
    return sock


async def _attack():
    server = NetServer(
        models=MODELS,
        mode="realtime",
        time_scale=1e-5,
        max_inflight=16,
        out_queue_bound=8,
        sndbuf=4096,
    )
    loop = asyncio.get_running_loop()
    async with server:
        hostile = _slow_reader_socket(server.port)
        try:
            # Firehose ~400 KiB of padded infers without ever reading.
            await loop.run_in_executor(None, hostile.sendall, _flood_blob())

            # Wait until the slow reader's queue demonstrably overflowed
            # and the in-flight cap demonstrably refused work.
            deadline = loop.time() + 30
            while (
                server.results_dropped == 0
                or server.backpressure_rejections == 0
            ):
                if loop.time() > deadline:
                    break
                await asyncio.sleep(0.01)
            mid_attack = (
                server.results_dropped,
                server.backpressure_rejections,
            )

            # A healthy client on the same server, while the hostile
            # connection is still open and stalled.
            healthy = await AsyncNetClient.connect("127.0.0.1", server.port)
            try:
                outcomes = []
                for _ in range(10):
                    result = await asyncio.wait_for(
                        healthy.infer("yolov2"), timeout=10
                    )
                    outcomes.append(result.outcome)
                stats = await asyncio.wait_for(healthy.stats(), timeout=10)
            finally:
                await healthy.close()
        finally:
            hostile.close()
    return mid_attack, outcomes, stats


@pytest.fixture(scope="module")
def attack():
    return asyncio.run(_attack())


def test_slow_reader_overflows_bounded_queue(attack):
    (dropped, _), _, _ = attack
    assert dropped > 0, "slow reader never overflowed the outbound queue"


def test_inflight_cap_rejects_flood(attack):
    (_, backpressure), _, _ = attack
    assert backpressure > 0, "flood never tripped the in-flight cap"
    # The cap bounds concurrent work per connection; the vast majority of
    # the 400-request flood must have been refused up front.
    assert backpressure >= N_FLOOD // 2


def test_healthy_client_unaffected(attack):
    _, outcomes, _ = attack
    assert outcomes == ["served"] * len(outcomes)


def test_stats_frame_reports_pressure(attack):
    _, _, stats = attack
    assert stats["net"]["results_dropped"] > 0
    assert stats["net"]["backpressure_rejections"] > 0
    assert stats["server"]["in_flight"] >= 0
