"""DeploymentManager: offline splitting + block persistence."""

import pytest

from repro.graphs.serialize import load_ronnx
from repro.hardware.presets import jetson_nano
from repro.server.deployment import DeploymentManager
from repro.splitting.genetic import GAConfig
from repro.zoo.registry import get_model


@pytest.fixture
def manager(tmp_path):
    return DeploymentManager(
        jetson_nano(), block_dir=tmp_path, ga_config=GAConfig(seed=0)
    )


def test_long_model_gets_split(manager):
    rec = manager.deploy(get_model("resnet50"))
    assert len(rec.task.blocks_ms) >= 2
    assert rec.cuts
    assert rec.task.ext_ms == pytest.approx(28.35)


def test_short_model_stays_whole(manager):
    rec = manager.deploy(get_model("yolov2"))
    assert rec.task.blocks_ms == (pytest.approx(10.8),)
    assert rec.cuts == ()


def test_blocks_persisted_and_loadable(manager, tmp_path):
    rec = manager.deploy(get_model("resnet50"))
    assert len(rec.block_paths) == len(rec.cuts) + 1
    total_ops = 0
    for path in rec.block_paths:
        block = load_ronnx(path)
        total_ops += len(block)
        assert block.metadata["parent"] == "resnet50"
    assert total_ops == len(get_model("resnet50", cached=True))


def test_block_boundary_inputs(manager):
    rec = manager.deploy(get_model("resnet50"))
    second = load_ronnx(rec.block_paths[1])
    # The second block's inputs are tensors crossing the first cut.
    assert len(second.inputs) >= 1
    assert all(t.name for t in second.inputs)


def test_no_persistence_without_dir():
    manager = DeploymentManager(jetson_nano(), ga_config=GAConfig(seed=0))
    rec = manager.deploy(get_model("vgg19"))
    assert rec.block_paths == ()


def test_task_specs_accumulate(manager):
    manager.deploy(get_model("yolov2"))
    manager.deploy(get_model("vgg19"))
    specs = manager.task_specs()
    assert set(specs) == {"yolov2", "vgg19"}


def test_deploy_into_node_profile():
    """Constructed with a NodeProfile, deploy fills the node's catalogue
    (the per-node deploy the fleet orchestrator builds on)."""
    from repro.hardware import NodeProfile

    node = NodeProfile(name="edge/0", device=jetson_nano())
    manager = DeploymentManager(node, ga_config=GAConfig(seed=0))
    assert manager.device is node.device
    rec = manager.deploy(get_model("vgg19"))
    assert node.specs["vgg19"] is rec.task
    assert node.resolve(rec.task) is rec.task


def test_plan_store_reused_across_managers(tmp_path, monkeypatch):
    """Two managers for the same device share GA results through the
    content-hash plan store (warm deploys skip the search)."""
    monkeypatch.setenv("SPLIT_CACHE_DIR", str(tmp_path))
    a = DeploymentManager(jetson_nano(), ga_config=GAConfig(seed=0))
    b = DeploymentManager(jetson_nano(), ga_config=GAConfig(seed=0))
    assert a.plan_store is not None
    rec_a = a.deploy(get_model("resnet50"))
    rec_b = b.deploy(get_model("resnet50"))
    assert rec_a.task.blocks_ms == rec_b.task.blocks_ms
    off = DeploymentManager(
        jetson_nano(), ga_config=GAConfig(seed=0), use_plan_store=False
    )
    assert off.plan_store is None
