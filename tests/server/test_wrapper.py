"""Request wrapper/unwrapper."""

import pytest

from repro.errors import ServerError
from repro.graphs.serialize import dump_ronnx, dumps_ronnx
from repro.scheduling.request import TaskSpec
from repro.server.wrapper import RequestUnwrapper, RequestWrapper
from repro.zoo.registry import get_model


@pytest.fixture
def unwrapper():
    return RequestUnwrapper()


def test_unwrap_graph_object(unwrapper):
    g = get_model("googlenet")
    assert unwrapper.unwrap(g) is g


def test_unwrap_ronnx_string(unwrapper):
    g = get_model("vgg19")
    out = unwrapper.unwrap(dumps_ronnx(g))
    assert out.name == "vgg19"
    assert len(out) == len(g)


def test_unwrap_path(unwrapper, tmp_path):
    g = get_model("yolov2")
    path = dump_ronnx(g, tmp_path / "y.ronnx")
    assert unwrapper.unwrap(path).name == "yolov2"


def test_unwrap_str_path(unwrapper, tmp_path):
    g = get_model("yolov2")
    path = dump_ronnx(g, tmp_path / "y.ronnx")
    assert unwrapper.unwrap(str(path)).name == "yolov2"


def test_unwrap_bad_type(unwrapper):
    with pytest.raises(ServerError, match="unwrap"):
        unwrapper.unwrap(42)


def test_wrapper_builds_requests():
    spec = TaskSpec(name="m", ext_ms=10.0, blocks_ms=(10.0,))
    w = RequestWrapper({"m": spec})
    r = w.wrap("m", arrival_ms=3.0)
    assert r.task is spec
    assert r.arrival_ms == 3.0


def test_wrapper_unknown_model():
    w = RequestWrapper({})
    with pytest.raises(ServerError, match="not deployed"):
        w.wrap("ghost", 0.0)
