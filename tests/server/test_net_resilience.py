"""Wire resilience: heartbeats, client deadlines, reconnect, typed loss.

The failure contract of the socket layer after this suite:

* a silent dead peer is detected — HEARTBEAT round-trips on both codecs
  and an armed ``request_timeout_s`` turns any unanswered request into
  :class:`RequestTimeout` instead of a hang;
* a dropped connection rejects *every* pending future with the typed
  :class:`ConnectionLost` (a ``ServerError`` and a ``ConnectionError``)
  — killing a server mid-replay leaves nothing waiting forever;
* an opt-in :class:`RetryPolicy` redials with bounded backoff and
  replays still-unacknowledged tracked infers under their original ids,
  so each future settles exactly once with its own reply.
"""

import asyncio

import pytest

from repro.errors import ConnectionLost, RequestTimeout, ServerError
from repro.robustness import RetryPolicy
from repro.server.client import AsyncNetClient, replay_items_async
from repro.server.net import NetServer
from repro.server.protocol import CODEC_BINARY
from repro.runtime.workload import Scenario, WorkloadGenerator

MODEL = "mobilenetv2"

#: Fast redial: first attempt after 50 ms, capped well under the
#: watchdog.
RECONNECT = RetryPolicy(
    max_retries=25, backoff_base_ms=50.0, backoff_factor=1.2,
    max_backoff_ms=200.0,
)


def items_for(n):
    scenario = Scenario("resilience", 50.0, "low", n_requests=n)
    return list(WorkloadGenerator((MODEL,), seed=2).generate(scenario))


@pytest.mark.net
class TestHeartbeat:
    def test_json_codec_echo(self):
        async def run():
            server = NetServer(models=(MODEL,), mode="realtime")
            async with server:
                async with await AsyncNetClient.connect(
                    "127.0.0.1", server.port
                ) as client:
                    ack = await client.heartbeat()
                    assert "id" in ack

        asyncio.run(run())

    def test_binary_codec_echo(self):
        async def run():
            server = NetServer(models=(MODEL,), mode="realtime")
            async with server:
                async with await AsyncNetClient.connect(
                    "127.0.0.1", server.port, codec=CODEC_BINARY
                ) as client:
                    assert client.binary
                    ack = await client.heartbeat()
                    assert "id" in ack
                    # The connection is still good for hot traffic.
                    result = await client.infer(MODEL, 0.0)
                    assert result.outcome == "served"

        asyncio.run(run())


@pytest.mark.net
class TestRequestDeadline:
    def test_unanswered_infer_times_out(self):
        """Lockstep buffers terminals until drain, so an un-drained infer
        never answers — the client deadline must fire instead of hanging."""

        async def run():
            server = NetServer(models=(MODEL,), mode="lockstep")
            async with server:
                client = await AsyncNetClient.connect(
                    "127.0.0.1", server.port, request_timeout_s=0.3
                )
                fut = await client.submit(MODEL, 0.0)
                with pytest.raises(RequestTimeout, match="deadline"):
                    await asyncio.wait_for(fut, timeout=10)
                await client.close()

        asyncio.run(run())

    def test_answered_infer_unaffected(self):
        async def run():
            server = NetServer(models=(MODEL,), mode="realtime")
            async with server:
                client = await AsyncNetClient.connect(
                    "127.0.0.1", server.port, request_timeout_s=30.0
                )
                result = await client.infer(MODEL, 0.0)
                assert result.outcome == "served"
                await client.close()

        asyncio.run(run())


@pytest.mark.net
class TestConnectionLossTyping:
    def test_pending_futures_reject_with_connection_lost(self):
        async def run():
            server = NetServer(models=(MODEL,), mode="lockstep")
            await server.start()
            client = await AsyncNetClient.connect("127.0.0.1", server.port)
            futs = [await client.submit(MODEL, float(i)) for i in range(8)]
            await server.stop()
            with pytest.raises(ConnectionLost):
                await asyncio.wait_for(asyncio.gather(*futs), timeout=10)
            # ConnectionLost is both vocabularies at once.
            assert issubclass(ConnectionLost, ServerError)
            assert issubclass(ConnectionLost, ConnectionError)
            # New sends are refused with the same typed error.
            with pytest.raises(ConnectionLost):
                await client.submit(MODEL, 99.0)
            await client.close()

        asyncio.run(run())

    def test_server_killed_mid_replay_rejects_not_hangs(self):
        """Satellite: kill the server mid-``replay_items`` and assert no
        future outlives a bounded wait — every one rejects typed."""

        async def run():
            server = NetServer(models=(MODEL,), mode="lockstep")
            await server.start()
            items = items_for(50)
            replay = asyncio.ensure_future(
                replay_items_async(
                    "127.0.0.1", server.port, items, drain=False
                )
            )
            await asyncio.sleep(0.2)  # submissions in flight, no drain
            await server.stop()
            with pytest.raises((ConnectionLost, ServerError)):
                await asyncio.wait_for(replay, timeout=15)

        asyncio.run(run())


@pytest.mark.net
class TestReconnect:
    def test_replays_unacked_infers_with_original_ids(self):
        async def run():
            server = NetServer(models=(MODEL,), mode="lockstep")
            await server.start()
            port = server.port
            client = await AsyncNetClient.connect(
                "127.0.0.1", port, reconnect=RECONNECT
            )
            futs = [await client.submit(MODEL, float(i)) for i in range(4)]
            await server.stop()
            # Bring a fresh server up on the same port mid-backoff.
            await asyncio.sleep(0.2)
            server2 = NetServer(models=(MODEL,), mode="lockstep", port=port)
            await server2.start()
            try:
                await asyncio.sleep(1.0)  # redial + replay
                await client.drain()
                results = await asyncio.wait_for(
                    asyncio.gather(*futs), timeout=15
                )
                assert [r.outcome for r in results] == ["served"] * 4
                # Original ids, each settled exactly once.
                assert sorted(r.id for r in results) == [1, 2, 3, 4]
            finally:
                await client.close()
                await server2.stop()

        asyncio.run(run())

    def test_reconnect_renegotiates_codec(self):
        async def run():
            server = NetServer(models=(MODEL,), mode="realtime")
            await server.start()
            port = server.port
            client = await AsyncNetClient.connect(
                "127.0.0.1", port, codec=CODEC_BINARY, reconnect=RECONNECT
            )
            assert client.binary
            await server.stop()
            await asyncio.sleep(0.2)
            server2 = NetServer(models=(MODEL,), mode="realtime", port=port)
            await server2.start()
            try:
                await asyncio.sleep(1.0)
                # Back on the binary codec without explicit renegotiation.
                assert client.binary
                result = await asyncio.wait_for(
                    client.infer(MODEL, 0.0), timeout=15
                )
                assert result.outcome == "served"
            finally:
                await client.close()
                await server2.stop()

        asyncio.run(run())

    def test_exhausted_backoff_fails_typed(self):
        async def run():
            server = NetServer(models=(MODEL,), mode="lockstep")
            await server.start()
            client = await AsyncNetClient.connect(
                "127.0.0.1",
                server.port,
                reconnect=RetryPolicy(
                    max_retries=1, backoff_base_ms=20.0, max_backoff_ms=40.0
                ),
            )
            fut = await client.submit(MODEL, 0.0)
            await server.stop()  # nothing comes back on this port
            with pytest.raises(ConnectionLost):
                await asyncio.wait_for(fut, timeout=15)
            await client.close()

        asyncio.run(run())
