"""SplitServer under a RobustnessConfig: typed outcomes, never a hang.

Scripted faults make the threaded path deterministic enough to assert
exact outcomes; the stochastic chaos smoke at the end only asserts the
robustness contract (every handle resolves, totals reconcile).
"""

import pytest

from repro.errors import RequestFailed, RequestTimeout, ServerError
from repro.robustness import (
    FaultKind,
    FaultPlan,
    LoadShedConfig,
    RetryPolicy,
    RobustnessConfig,
    ScriptedFault,
)
from repro.server.server import SplitServer
from repro.zoo.registry import get_model


def make_server(robustness, time_scale=1e-5, models=("yolov2",)):
    srv = SplitServer(time_scale=time_scale, robustness=robustness)
    for m in models:
        srv.deploy(get_model(m))
    return srv


def test_inert_config_serves_normally():
    srv = make_server(RobustnessConfig())
    with srv:
        result = srv.submit("yolov2").result(timeout_s=5.0)
    assert result.model == "yolov2"
    assert result.retries == 0
    stats = srv.stats()
    assert stats["shed"] == stats["failed"] == stats["timed_out"] == 0


def test_scripted_fail_retried_then_served():
    cfg = RobustnessConfig(
        faults=FaultPlan(scripted=(ScriptedFault(FaultKind.FAIL, attempt=0),)),
        retry=RetryPolicy(max_retries=2, backoff_base_ms=1.0),
    )
    srv = make_server(cfg)
    with srv:
        result = srv.submit("yolov2").result(timeout_s=5.0)
    assert result.retries == 1
    assert srv.tokens.retries == 1
    assert srv.stats()["failed"] == 0


def test_retries_exhausted_raises_request_failed():
    cfg = RobustnessConfig(
        faults=FaultPlan(scripted=(ScriptedFault(FaultKind.FAIL),)),
        retry=RetryPolicy(max_retries=1, backoff_base_ms=1.0),
    )
    srv = make_server(cfg)
    with srv:
        handle = srv.submit("yolov2")
        with pytest.raises(RequestFailed, match="after 2 retries"):
            handle.result(timeout_s=5.0)
    assert handle.outcome == "failed"
    assert srv.stats()["failed"] == 1


def test_scripted_drop_raises_request_failed():
    cfg = RobustnessConfig(
        faults=FaultPlan(scripted=(ScriptedFault(FaultKind.DROP),))
    )
    srv = make_server(cfg)
    with srv:
        handle = srv.submit("yolov2")
        with pytest.raises(RequestFailed):
            handle.result(timeout_s=5.0)
    assert handle.outcome == "failed"


def test_deadline_raises_request_timeout():
    cfg = RobustnessConfig(timeout_ms=2.0)  # yolov2 needs ~10.8 ms
    srv = make_server(cfg)
    with srv:
        handle = srv.submit("yolov2")
        with pytest.raises(RequestTimeout, match="deadline"):
            handle.result(timeout_s=5.0)
    assert handle.outcome == "timed_out"
    assert srv.stats()["timed_out"] == 1


def test_request_timeout_is_a_timeout_error():
    """RequestTimeout must satisfy except TimeoutError handlers."""
    cfg = RobustnessConfig(timeout_ms=2.0)
    srv = make_server(cfg)
    with srv:
        handle = srv.submit("yolov2")
        with pytest.raises(TimeoutError):
            handle.result(timeout_s=5.0)


def test_load_shed_burst():
    cfg = RobustnessConfig(load_shed=LoadShedConfig(max_queue_depth=2))
    srv = make_server(cfg)
    with srv:
        handles = [srv.submit("yolov2") for _ in range(12)]
        srv.drain(timeout_s=30.0)
    outcomes = [h.outcome for h in handles]
    assert outcomes.count("shed") > 0
    assert outcomes.count("served") > 0
    assert all(o in ("served", "shed") for o in outcomes)
    for h in handles:
        if h.outcome == "shed":
            assert h.dropped
            with pytest.raises(ServerError, match="dropped"):
                h.result(timeout_s=1.0)
    assert srv.stats()["shed"] == outcomes.count("shed")


def test_chaos_smoke_every_handle_resolves():
    """Stochastic faults: nothing hangs, every submission is accounted."""
    cfg = RobustnessConfig(
        faults=FaultPlan(seed=4, fail_rate=0.10, stall_rate=0.05),
        retry=RetryPolicy(max_retries=2, backoff_base_ms=1.0),
        timeout_rr=60.0,
        load_shed=LoadShedConfig(max_queue_depth=16),
    )
    srv = make_server(cfg, models=("yolov2", "vgg19"))
    n = 25
    with srv:
        handles = [srv.submit("yolov2") for _ in range(n - 5)]
        handles += [srv.submit("vgg19") for _ in range(5)]
        srv.drain(timeout_s=60.0)
    outcomes = [h.outcome for h in handles]
    assert all(o != "pending" for o in outcomes)
    stats = srv.stats()
    assert (
        stats["completed"]
        + stats["rejected"]
        + stats["shed"]
        + stats["failed"]
        + stats["timed_out"]
        == n
    )
    assert stats["parked"] == 0


def test_stats_exposes_robustness_counters():
    srv = make_server(RobustnessConfig())
    with srv:
        srv.submit("yolov2").result(timeout_s=5.0)
    stats = srv.stats()
    for key in ("shed", "failed", "timed_out", "retries", "stalls", "parked"):
        assert key in stats
