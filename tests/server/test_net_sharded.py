"""Sharded front-end: N acceptor loops, one protocol, one truth.

Realtime sharding is pure throughput plumbing — connections spread over
shard loops (SO_REUSEPORT kernel steering, or the in-process hand-off
acceptor when forced), every counter still adds up, every request still
resolves. Lockstep sharding must additionally keep the determinism
contract: per-connection intake lanes are merged by ``(arrival_ms,
task_type)`` before the kernel sees them, so a trace split across two
sockets settles float-identically to :func:`simulate` on the whole
trace — order *within* each connection's result stream included.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.runtime.capture import summarize_engine_result
from repro.runtime.simulator import simulate
from repro.runtime.workload import Scenario, WorkloadGenerator
from repro.server.client import AsyncNetClient
from repro.server.net import NetServer
from repro.server.protocol import CODEC_BINARY, ERR_BAD_STATE

pytestmark = pytest.mark.net

MODELS = ("yolov2", "vgg19")
SEED = 7
SCENARIO = Scenario("sharded", 35.0, "high", 200)


def _items():
    return WorkloadGenerator(MODELS, seed=SEED).generate(SCENARIO)


# ---------------------------------------------------------------- realtime
def _realtime_fanout(force_handoff: bool) -> None:
    n_conns = 8
    per_conn = 20

    async def run():
        server = NetServer(
            models=MODELS,
            mode="realtime",
            shards=2,
            _force_handoff=force_handoff,
        )
        async with server:
            clients = [
                await AsyncNetClient.connect("127.0.0.1", server.port)
                for _ in range(n_conns)
            ]
            try:
                futs = []
                for client in clients:
                    for i in range(per_conn):
                        futs.append(
                            await client.submit(MODELS[i % len(MODELS)])
                        )
                results = await asyncio.gather(*futs)
                assert len(results) == n_conns * per_conn
                stats = await clients[0].stats()
            finally:
                for client in clients:
                    await client.close()
            assert stats["net"]["shards"] == 2
            assert server.connections_total == n_conns
            assert server.results_dropped == 0
            # Conservation across shards: every request came back.
            received = sum(len(c.received) for c in clients)
            assert received == n_conns * per_conn
            if force_handoff:
                # Round-robin hand-off provably uses both shard loops
                # (kernel REUSEPORT steering cannot be asserted on).
                assert all(
                    s.connections_total > 0 for s in server._shards
                )
        assert server.split.responder.in_flight() == 0

    asyncio.run(run())


def test_realtime_shards_reuseport():
    _realtime_fanout(force_handoff=False)


def test_realtime_shards_handoff_fallback():
    _realtime_fanout(force_handoff=True)


# ---------------------------------------------------------------- lockstep
def test_sharded_lockstep_two_lanes_match_simulate():
    """A trace interleaved over two lockstep connections (one per codec)
    merges back into the simulator's exact event order: identical
    outcome sets, float-identical finish times and plans, and each
    connection's result stream is a subsequence of the global terminal
    order."""
    items = _items()
    lane_a = items[0::2]
    lane_b = items[1::2]

    async def run():
        server = NetServer(
            models=MODELS, mode="lockstep", shards=2, lockstep_lanes=2
        )
        async with server:
            a = await AsyncNetClient.connect("127.0.0.1", server.port)
            b = await AsyncNetClient.connect(
                "127.0.0.1", server.port, codec=CODEC_BINARY
            )
            try:
                futs = [
                    await a.submit(lane_a[0].model_name, lane_a[0].arrival_ms)
                ]
                # Pin which connection owns which intake lane before the
                # second connection's frames can race across shard loops
                # (fence() = processed-everything-so-far barrier).
                await a.fence()
                for item in lane_a[1:]:
                    futs.append(
                        await a.submit(item.model_name, item.arrival_ms)
                    )
                futs.extend(
                    await b.submit_batch(
                        [(i.model_name, i.arrival_ms) for i in lane_b]
                    )
                )
                # Both lanes must close for the merge to run dry; the
                # drains block until then, so they go out together.
                await asyncio.gather(a.drain(), b.drain())
                await asyncio.gather(*futs)
                return list(a.received), list(b.received)
            finally:
                await a.close()
                await b.close()

    rec_a, rec_b = asyncio.run(run())
    sim = simulate("split", SCENARIO, models=MODELS, seed=SEED)
    ref = summarize_engine_result(sim.engine_result)

    observations = rec_a + rec_b
    assert len(observations) == len(items)
    assert all(r.outcome == "served" for r in observations)

    # Float-identical settlement per request (global emission order is
    # split across two sockets, so compare keyed, not sequenced).
    ref_finish = dict(zip(ref.order, ref.finishes))
    ref_plans = dict(ref.plans)
    for r in observations:
        key = (r.model, r.arrival_ms)
        assert key in ref_finish, key
        assert r.finish_ms == ref_finish[key]
        assert r.plan_ms == ref_plans[key]

    # Each connection still observes its own results in global terminal
    # order: its stream must be a subsequence of the simulator's order.
    for received in (rec_a, rec_b):
        keys = [(r.model, r.arrival_ms) for r in received]
        it = iter(ref.order)
        assert all(key in it for key in keys), "per-connection order broken"


def test_lockstep_extra_lane_refused():
    """Once the expected lane count is reached, a third submitting
    connection gets ``bad_state`` instead of silently stalling the
    merge."""
    items = _items()[:20]

    async def run():
        server = NetServer(
            models=MODELS, mode="lockstep", shards=2, lockstep_lanes=2
        )
        async with server:
            a = await AsyncNetClient.connect("127.0.0.1", server.port)
            b = await AsyncNetClient.connect("127.0.0.1", server.port)
            c = await AsyncNetClient.connect("127.0.0.1", server.port)
            try:
                fut_a = await a.submit(items[0].model_name, items[0].arrival_ms)
                fut_b = await b.submit(items[1].model_name, items[1].arrival_ms)
                # Lane claims happen when the server processes each
                # connection's first INFER, and frames from different
                # sockets race across shard loops; fence() orders the
                # claims, so c is deterministically third.
                await asyncio.gather(a.fence(), b.fence())
                refused = await c.infer(
                    items[2].model_name, items[2].arrival_ms
                )
                assert not refused.ok
                assert refused.outcome == ERR_BAD_STATE
                await asyncio.gather(a.drain(), b.drain())
                await asyncio.gather(fut_a, fut_b)
            finally:
                await a.close()
                await b.close()
                await c.close()

    asyncio.run(run())
