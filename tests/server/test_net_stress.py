"""Concurrency stress: 32 client connections flooding the realtime server.

The realtime mode has real races to lose — asyncio handlers, the token
scheduler's lock/condition pair, the assigner thread, and per-connection
writer tasks all run concurrently on a very tight scaled clock. Exact
event order is timing-dependent there, so the pinned invariant is
*request conservation*: every submitted request comes back with exactly
one terminal frame, the outcome partition sums to the number sent, and
the server ends the run with nothing in flight. The module watchdog (see
``conftest.py``) turns any deadlock into a failure instead of a hang.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.robustness.config import RobustnessConfig
from repro.robustness.shedding import LoadShedConfig
from repro.server.client import AsyncNetClient
from repro.server.net import NetServer

pytestmark = pytest.mark.net(timeout_s=90)

N_CONNECTIONS = 32
PER_CONNECTION = 25
MODELS = ("yolov2", "vgg19")
TIME_SCALE = 1e-5  # 1 sim-ms = 10 us wall


def _robustness() -> RobustnessConfig:
    # Queue-depth shedding only — no deadlines. The 800-request flood
    # guarantees shedding (depth 48 vs ~800 near-simultaneous arrivals),
    # and the queue head always survives a shed pass, so both outcome
    # classes appear on *every* run. Wall-clock deadlines would instead
    # race the submission loop for the GIL (800 socket writes take tens
    # of wall milliseconds = thousands of sim-ms at this scale), turning
    # the served/timed-out mix into a coin flip.
    return RobustnessConfig(
        load_shed=LoadShedConfig(max_queue_depth=48),
    )


async def _flood():
    server = NetServer(
        models=MODELS,
        mode="realtime",
        time_scale=TIME_SCALE,
        robustness=_robustness(),
        max_inflight=PER_CONNECTION + 8,
    )
    async with server:
        clients = [
            await AsyncNetClient.connect("127.0.0.1", server.port)
            for _ in range(N_CONNECTIONS)
        ]
        try:
            # Interleave across connections so submissions genuinely race.
            futures = []
            for i in range(PER_CONNECTION):
                for c, client in enumerate(clients):
                    model = MODELS[(i + c) % len(MODELS)]
                    futures.append(await client.submit(model))
            results = await asyncio.gather(*futures)
            await clients[0].drain()
            stats = await clients[0].stats()
            pending = sum(len(c._waiters) for c in clients)
        finally:
            for client in clients:
                await client.close()
    return results, stats, pending


@pytest.fixture(scope="module")
def flood():
    return asyncio.run(_flood())


def test_every_request_conserved(flood):
    results, _stats, _ = flood
    sent = N_CONNECTIONS * PER_CONNECTION
    assert len(results) == sent
    counts: dict[str, int] = {}
    for r in results:
        counts[r.outcome] = counts.get(r.outcome, 0) + 1
    assert sum(counts.values()) == sent
    assert set(counts) <= {"served", "rejected", "shed", "failed", "timed_out"}
    assert counts.get("served", 0) > 0


def test_server_side_accounting_matches(flood):
    results, stats, _ = flood
    srv = stats["server"]
    sent = N_CONNECTIONS * PER_CONNECTION
    assert (
        srv["completed"]
        + srv["rejected"]
        + srv["shed"]
        + srv["failed"]
        + srv["timed_out"]
        == sent
    )
    assert srv["in_flight"] == 0
    assert srv["queue_depth"] == 0
    # Healthy readers on every connection: nothing was dropped for
    # backpressure and nobody tripped the in-flight cap.
    assert stats["net"]["results_dropped"] == 0
    assert stats["net"]["backpressure_rejections"] == 0
    assert stats["net"]["connections_total"] == N_CONNECTIONS


def test_flood_actually_sheds(flood):
    """The 32-way burst must overload the depth-48 queue; a run where
    nothing sheds would mean the stress test stopped stressing."""
    results, _stats, _ = flood
    unhappy = [r for r in results if not r.ok]
    assert unhappy, "expected shed outcomes under flood"
    assert any(r.outcome == "shed" for r in unhappy)


def test_no_dangling_client_futures(flood):
    _results, _stats, pending = flood
    assert pending == 0
