"""The headline differential: a 200-request trace replayed through the
live socket server matches the simulator exactly — under both codecs.

The lockstep serving mode carries logical arrival stamps over the wire
and feeds them to the same discrete-event kernel the simulator runs, so
the comparison is *float-exact*, not statistical: identical completion
order, identical finish times, identical per-request split plans, and —
with robustness armed — identical shed/failed/timed-out outcome sets.
Request ids differ across processes; :mod:`repro.runtime.capture` keys
everything on the stable ``(task_type, arrival_ms)`` identity.

The suite is parametrized over the wire codec: the JSON codec replays
one INFER frame at a time (the PR-6 protocol, byte-compatible), the
binary codec ships the trace as packed INFER_BATCH frames — and both
must produce the same summary, with :func:`assert_bits_identical`
holding the stronger bit-level float property (the binary codec carries
raw IEEE-754 doubles; JSON relies on Python's shortest-round-trip repr,
pinned separately in ``test_net_codec.py``).

This is the pin that lets the wire layer (framing, codecs, batching,
asyncio plumbing, queueing, thread hand-offs) evolve freely: any
divergence from the kernel's scheduling contract fails loudly here.
"""

from __future__ import annotations

import asyncio
import os

import pytest

from repro.robustness.config import RobustnessConfig
from repro.robustness.faults import FaultPlan
from repro.robustness.retry import RetryPolicy
from repro.robustness.shedding import LoadShedConfig
from repro.runtime.capture import (
    assert_bits_identical,
    summarize_engine_result,
    summarize_observations,
)
from repro.runtime.simulator import simulate
from repro.runtime.workload import Scenario, WorkloadGenerator
from repro.server.client import replay_items_async
from repro.server.net import NetServer

pytestmark = pytest.mark.net

MODELS = ("yolov2", "vgg19")
SCENARIO = Scenario("netdiff", 35.0, "high", 200)
SEED = 5

#: (codec, batch_size) — JSON singles are the PR-6 wire path; binary
#: batches are the fast path the benchmarks measure. ``SPLIT_NET_CODEC``
#: (json|binary) narrows the parametrization to one codec — CI's flake
#: gate runs the suite three times per codec as separate matrix legs.
WIRE = {"json": ("json", 1), "binary": ("binary-v2", 16)}
_CODEC_GATE = os.environ.get("SPLIT_NET_CODEC")
if _CODEC_GATE:
    if _CODEC_GATE not in WIRE:
        raise ValueError(
            f"SPLIT_NET_CODEC={_CODEC_GATE!r}: expected one of {sorted(WIRE)}"
        )
    WIRE = {_CODEC_GATE: WIRE[_CODEC_GATE]}


def _robustness() -> RobustnessConfig:
    """Rates tuned so a 200-request replay exercises every unhappy path:
    injected block failures (some retried, some terminal), request drops,
    deadline evictions, and queue-depth shedding."""
    return RobustnessConfig(
        faults=FaultPlan(seed=11, fail_rate=0.05, drop_rate=0.02),
        retry=RetryPolicy(max_retries=1),
        timeout_rr=8.0,
        load_shed=LoadShedConfig(max_queue_depth=12),
    )


def _items():
    return WorkloadGenerator(MODELS, seed=SEED).generate(SCENARIO)


def _replay(robustness: RobustnessConfig | None, codec: str, batch_size: int):
    async def run():
        server = NetServer(
            models=MODELS, mode="lockstep", robustness=robustness
        )
        async with server:
            report = await replay_items_async(
                "127.0.0.1",
                server.port,
                _items(),
                mode="lockstep",
                codec=codec,
                batch_size=batch_size,
            )
        return report

    return asyncio.run(run())


@pytest.fixture(scope="module", params=sorted(WIRE), ids=sorted(WIRE))
def wire(request):
    return WIRE[request.param]


@pytest.fixture(scope="module")
def plain(wire):
    codec, batch_size = wire
    report = _replay(None, codec, batch_size)
    sim = simulate("split", SCENARIO, models=MODELS, seed=SEED)
    return (
        report,
        summarize_observations(report.results),
        summarize_engine_result(sim.engine_result),
    )


@pytest.fixture(scope="module")
def robust(wire):
    codec, batch_size = wire
    report = _replay(_robustness(), codec, batch_size)
    sim = simulate(
        "split", SCENARIO, models=MODELS, seed=SEED, robustness=_robustness()
    )
    return (
        report,
        summarize_observations(report.results),
        summarize_engine_result(sim.engine_result),
    )


# ------------------------------------------------------------- fault-free
def test_every_request_answered(plain):
    report, wire, _ = plain
    assert report.sent == SCENARIO.n_requests
    assert report.conserved
    assert wire.n_observed == SCENARIO.n_requests


def test_completion_order_identical(plain):
    _, wire, ref = plain
    assert wire.order == ref.order


def test_finish_times_float_exact(plain):
    _, wire, ref = plain
    assert wire.finishes == ref.finishes


def test_split_plan_choices_identical(plain):
    _, wire, ref = plain
    assert wire.plans == ref.plans
    # Elastic splitting means plans are per-request decisions; the trace
    # must actually exercise more than one plan shape for this to pin
    # anything.
    assert len({plan for _key, plan in wire.plans}) > 1


def test_full_summary_equality(plain):
    _, wire, ref = plain
    assert wire == ref


def test_full_summary_bit_identical(plain):
    """Every float crossed the wire bit-for-bit (both codecs must hold
    it: binary ships raw IEEE doubles, JSON round-trips via repr)."""
    _, wire, ref = plain
    assert_bits_identical(wire, ref)


# ------------------------------------------------------------- robustness
def test_robust_outcome_sets_identical(robust):
    _, wire, ref = robust
    assert wire.served == ref.served
    assert wire.shed == ref.shed
    assert wire.failed == ref.failed
    assert wire.timed_out == ref.timed_out
    assert wire.rejected == ref.rejected


def test_robust_replay_exercises_unhappy_paths(robust):
    """The chosen rates must actually produce wire-visible error frames,
    otherwise the outcome-set assertions above are vacuous."""
    report, wire, _ = robust
    assert report.conserved
    assert len(wire.shed) > 0
    assert len(wire.timed_out) > 0
    assert len(wire.failed) > 0
    assert len(wire.served) > 0


def test_robust_full_summary_equality(robust):
    _, wire, ref = robust
    assert wire == ref


def test_robust_full_summary_bit_identical(robust):
    _, wire, ref = robust
    assert_bits_identical(wire, ref)
