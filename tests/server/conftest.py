"""Shared guards for the server test package.

The ``net`` tests drive live sockets, event loops and worker threads; a
deadlock there would otherwise hang the whole suite. ``pytest-timeout``
is not available in this environment, so an autouse fixture arms a
per-test SIGALRM watchdog for every ``net``-marked test: if the test
(including its fixture setup) overruns, the alarm raises in the main
thread and pytest reports a failure instead of hanging CI.

Override the default budget per test with
``@pytest.mark.net(timeout_s=60)``.
"""

from __future__ import annotations

import signal

import pytest

DEFAULT_TIMEOUT_S = 120


@pytest.fixture(autouse=True)
def _net_watchdog(request):
    marker = request.node.get_closest_marker("net")
    if marker is None or not hasattr(signal, "SIGALRM"):
        yield
        return
    timeout_s = int(marker.kwargs.get("timeout_s", DEFAULT_TIMEOUT_S))

    def _expired(signum, frame):
        raise TimeoutError(
            f"net test exceeded its {timeout_s}s watchdog "
            "(likely a deadlock in the socket front-end)"
        )

    previous = signal.signal(signal.SIGALRM, _expired)
    signal.alarm(timeout_s)
    try:
        yield
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, previous)
