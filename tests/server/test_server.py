"""SplitServer: threaded end-to-end serving."""

import pytest

from repro.errors import ServerError
from repro.server.server import SplitServer
from repro.zoo.registry import get_model


@pytest.fixture
def server():
    srv = SplitServer(time_scale=1e-6)
    srv.deploy(get_model("yolov2"))
    srv.deploy(get_model("vgg19"))
    yield srv
    srv.stop()


def test_lifecycle_errors():
    srv = SplitServer(time_scale=1e-6)
    with pytest.raises(ServerError, match="no models"):
        srv.start()
    srv.deploy(get_model("yolov2"))
    with pytest.raises(ServerError, match="not running"):
        srv.submit("yolov2")
    srv.start()
    with pytest.raises(ServerError, match="already running"):
        srv.start()
    with pytest.raises(ServerError, match="before starting"):
        srv.deploy(get_model("vgg19"))
    srv.stop()
    srv.stop()  # idempotent


def test_single_request_roundtrip(server):
    server.start()
    handle = server.submit("yolov2")
    result = handle.result(timeout_s=5.0)
    assert result.model == "yolov2"
    assert result.e2e_ms >= 10.8 * 0.9
    assert result.response_ratio >= 0.9
    assert handle.done()


def test_unknown_model_rejected(server):
    server.start()
    with pytest.raises(ServerError, match="not deployed"):
        server.submit("ghost")


def test_many_requests_all_complete(server):
    server.start()
    handles = [server.submit("yolov2") for _ in range(30)]
    handles += [server.submit("vgg19") for _ in range(10)]
    server.drain(timeout_s=30.0)
    results = [h.result(1.0) for h in handles]
    assert len(results) == 40
    assert server.responder.in_flight() == 0
    assert len(server.responder.completed) == 40


def test_short_requests_preempt_long():
    """Submit a long burst then shorts: shorts should not wait for every
    long request (greedy preemption orders them forward).

    Uses a coarser clock than the shared fixture (1 sim-ms = 10 us of
    wall time) so OS scheduling jitter stays small relative to block
    durations — at 1e-6 the whole yolov2 run is ~11 us and thread wakeup
    noise can flip the comparison under a loaded machine.
    """
    srv = SplitServer(time_scale=1e-5)
    srv.deploy(get_model("vgg19"))
    srv.deploy(get_model("yolov2"))
    with srv:
        long_handles = [srv.submit("vgg19") for _ in range(6)]
        short_handles = [srv.submit("yolov2") for _ in range(6)]
        srv.drain(timeout_s=60.0)
    long_rr = [h.result(1.0).response_ratio for h in long_handles]
    short_rr = [h.result(1.0).response_ratio for h in short_handles]
    # Shorts arrived last; under FIFO they would wait behind ~6 vgg runs
    # (~400 sim-ms => RR > 30). Greedy preemption must keep them an order
    # of magnitude below that and no worse than the longs' relative wait.
    assert sum(short_rr) / len(short_rr) < 15.0
    assert sum(short_rr) / len(short_rr) < sum(long_rr) / len(long_rr) * 3


def test_context_manager(server):
    with server as s:
        h = s.submit("yolov2")
        assert h.result(5.0).model == "yolov2"


def test_result_timeout():
    srv = SplitServer(time_scale=1e-6)
    srv.deploy(get_model("yolov2"))
    # Never started: the handle can't resolve.
    srv._running = True  # bypass the running check to enqueue only
    handle = srv.submit("yolov2")
    srv._running = False
    with pytest.raises(ServerError, match="timeout"):
        handle.result(timeout_s=0.05)


def test_deployed_models_listing(server):
    assert server.deployed_models == ("vgg19", "yolov2")


class TestAdmissionControl:
    def test_invalid_threshold(self):
        with pytest.raises(ServerError, match="admission_alpha"):
            SplitServer(admission_alpha=1.0)

    def test_burst_overflow_rejected(self):
        srv = SplitServer(time_scale=1e-6, admission_alpha=3.0)
        srv.deploy(get_model("vgg19"))
        with srv:
            handles = [srv.submit("vgg19") for _ in range(20)]
            srv.drain(timeout_s=30.0)
        dropped = [h for h in handles if h.dropped]
        served = [h for h in handles if not h.dropped]
        assert dropped, "a 20-deep VGG burst must trip a 3x admission limit"
        assert served, "the first submissions must be admitted"
        for h in dropped:
            with pytest.raises(ServerError, match="dropped"):
                h.result(timeout_s=0.1)
        assert srv.rejected == len(dropped)

    def test_no_rejections_when_idle(self):
        srv = SplitServer(time_scale=1e-6, admission_alpha=5.0)
        srv.deploy(get_model("yolov2"))
        with srv:
            h = srv.submit("yolov2")
            assert h.result(timeout_s=5.0).model == "yolov2"
        assert srv.rejected == 0


def test_stats_snapshot(server):
    server.start()
    handles = [server.submit("yolov2") for _ in range(5)]
    server.drain(timeout_s=10.0)
    for h in handles:
        h.result(timeout_s=1.0)
    stats = server.stats()
    assert stats["completed"] == 5
    assert stats["in_flight"] == 0
    assert stats["deployed_models"] == 2
    assert stats["blocks_executed"] >= 5
    assert stats["mean_response_ratio"] >= 0.9
    assert stats["rejected"] == 0
