"""Property suite for binary codec v2 and the HELLO negotiation.

Extends ``test_net_protocol.py`` (which pins the JSON codec and the
frame envelope) to the negotiated binary codec: packed records must
round-trip bit-for-bit through arbitrary TCP re-chunking, every
malformed batch frame must map to a typed :class:`ProtocolError`, a
mid-stream codec switch must happen exactly at its frame boundary, and
two live connections on one server — one per codec — must never
cross-contaminate. The JSON float-round-trip regression test here is
what licenses :mod:`repro.runtime.capture` keying summaries on raw
``arrival_ms`` floats.
"""

from __future__ import annotations

import asyncio
import json
import math
import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime.workload import Scenario, WorkloadGenerator
from repro.server.client import AsyncNetClient
from repro.server.net import NetServer
from repro.server.protocol import (
    CODEC_BINARY,
    CODEC_JSON,
    INFER_RECORD,
    BadFrame,
    BinaryCodecV2,
    FrameDecoder,
    FrameType,
    ProtocolError,
    TAG_OUTCOMES,
    decode_frames,
    encode_frame,
    BINARY_CODEC,
    JSON_CODEC,
)

pytestmark = pytest.mark.net

# Doubles including the adversarial corners: NaN payloads, infinities,
# signed zero, denormals — the binary codec must move all of them
# untouched (JSON cannot carry NaN/inf, which is exactly why the hot
# path is packed).
_doubles = st.floats(width=64, allow_nan=True, allow_infinity=True)
_finite = st.floats(width=64, allow_nan=False, allow_infinity=False)
_cids = st.integers(min_value=0, max_value=2**32 - 1)
_midx = st.integers(min_value=0, max_value=2**16 - 1)
_u32 = st.integers(min_value=0, max_value=2**32 - 1)
_u8 = st.integers(min_value=0, max_value=255)
_tags = st.integers(min_value=0, max_value=len(TAG_OUTCOMES) - 1)

_infer_records = st.tuples(_cids, _midx, _doubles)
_plans = st.one_of(
    st.none(), st.lists(_doubles, min_size=1, max_size=8).map(tuple)
)
_result_records = st.tuples(
    _cids, _tags, _midx, _doubles, _doubles, _doubles, _doubles, _u32, _u32, _plans
)


def _bits(x: float) -> bytes:
    return struct.pack("!d", x)


def _tuple_bits(values) -> tuple:
    return tuple(
        _bits(v) if isinstance(v, float) else _tuple_bits(v)
        if isinstance(v, tuple)
        else v
        for v in values
    )


def _chunks(data: bytes, cut_points: list[int]) -> list[bytes]:
    cuts = sorted({min(c % (len(data) + 1), len(data)) for c in cut_points})
    out, prev = [], 0
    for cut in cuts:
        out.append(data[prev:cut])
        prev = cut
    out.append(data[prev:])
    return out


# ---------------------------------------------------------- record roundtrip
@settings(max_examples=200)
@given(record=_infer_records, cut_points=st.lists(st.integers(min_value=0), max_size=6))
def test_infer_record_roundtrips_bit_exact(record, cut_points):
    cid, midx, arrival = record
    wire = BinaryCodecV2.encode_infer(cid, midx, arrival)
    decoder = FrameDecoder(BINARY_CODEC)
    decoded = []
    for chunk in _chunks(wire, cut_points):
        decoded.extend(decoder.feed(chunk))
    decoder.eof()
    ((ftype, payload),) = decoded
    assert ftype is FrameType.INFER
    out_cid, out_midx, out_arrival = payload
    assert (out_cid, out_midx) == (cid, midx)
    assert _bits(out_arrival) == _bits(arrival)


@settings(max_examples=100)
@given(
    records=st.lists(_infer_records, min_size=0, max_size=20),
    cut_points=st.lists(st.integers(min_value=0), max_size=6),
)
def test_infer_batch_roundtrips_bit_exact(records, cut_points):
    wire = BinaryCodecV2.encode_infer_batch(records)
    decoder = FrameDecoder(BINARY_CODEC)
    decoded = []
    for chunk in _chunks(wire, cut_points):
        decoded.extend(decoder.feed(chunk))
    decoder.eof()
    ((ftype, payload),) = decoded
    assert ftype is FrameType.INFER_BATCH
    assert [_tuple_bits(r) for r in payload] == [_tuple_bits(r) for r in records]


@settings(max_examples=200)
@given(record=_result_records)
def test_result_record_roundtrips_bit_exact(record):
    wire = BinaryCodecV2.encode_result(record)
    ((ftype, payload),) = decode_frames(wire, BINARY_CODEC)
    assert ftype is FrameType.RESULT
    assert _tuple_bits(payload) == _tuple_bits(record)


@settings(max_examples=100)
@given(records=st.lists(_result_records, min_size=0, max_size=10))
def test_result_batch_roundtrips_bit_exact(records):
    wire = BinaryCodecV2.encode_result_batch(records)
    ((ftype, payload),) = decode_frames(wire, BINARY_CODEC)
    assert ftype is FrameType.RESULT_BATCH
    assert [_tuple_bits(r) for r in payload] == [_tuple_bits(r) for r in records]


# --------------------------------------------------------- malformed frames
@given(body_len=st.integers(min_value=0, max_value=INFER_RECORD.size * 3))
def test_wrong_size_infer_body_is_bad(body_len):
    if body_len == INFER_RECORD.size:
        return
    wire = struct.pack("!I", 1 + body_len) + bytes([int(FrameType.INFER)]) + b"\0" * body_len
    with pytest.raises(BadFrame):
        FrameDecoder(BINARY_CODEC).feed(wire)


@settings(max_examples=100)
@given(
    records=st.lists(_infer_records, min_size=0, max_size=5),
    count_delta=st.integers(min_value=-5, max_value=5),
)
def test_hostile_batch_count_is_bad(records, count_delta):
    """A count header inconsistent with the body length must be refused
    (no over-read, no silent truncation)."""
    if count_delta == 0:
        return
    hostile_count = len(records) + count_delta
    if hostile_count < 0:
        return
    body = struct.pack("!I", hostile_count) + b"".join(
        INFER_RECORD.pack(*r) for r in records
    )
    wire = struct.pack("!I", 1 + len(body)) + bytes([int(FrameType.INFER_BATCH)]) + body
    with pytest.raises(BadFrame):
        FrameDecoder(BINARY_CODEC).feed(wire)


@settings(max_examples=100)
@given(records=st.lists(_result_records, min_size=1, max_size=5), drop=st.integers(min_value=1))
def test_truncated_result_batch_is_bad(records, drop):
    """Cutting bytes off the end of a RESULT_BATCH body (count intact)
    must raise, not return partial records."""
    frame = BinaryCodecV2.encode_result_batch(records)
    body = frame[5:]
    cut = (drop % len(body)) or 1
    body = body[:-cut]
    wire = struct.pack("!I", 1 + len(body)) + bytes([int(FrameType.RESULT_BATCH)]) + body
    with pytest.raises(BadFrame):
        FrameDecoder(BINARY_CODEC).feed(wire)


@given(tag=st.integers(min_value=len(TAG_OUTCOMES), max_value=255))
def test_unknown_outcome_tag_is_bad(tag):
    record = (1, 0, 0, 0.0, 0.0, 0.0, 0.0, 0, 0, None)
    frame = bytearray(BinaryCodecV2.encode_result(record))
    frame[9] = tag  # the tag byte: 4 length + 1 type + 4 cid
    with pytest.raises(BadFrame):
        FrameDecoder(BINARY_CODEC).feed(bytes(frame))


@settings(max_examples=200)
@given(garbage=st.binary(min_size=0, max_size=200))
def test_binary_garbage_never_crashes_untyped(garbage):
    decoder = FrameDecoder(BINARY_CODEC)
    try:
        decoder.feed(garbage)
        decoder.eof()
    except ProtocolError:
        pass


def test_binary_encode_refuses_hot_types_as_json():
    from repro.errors import ServerError

    for ftype in (
        FrameType.INFER,
        FrameType.INFER_BATCH,
        FrameType.RESULT,
        FrameType.RESULT_BATCH,
    ):
        with pytest.raises(ServerError):
            BINARY_CODEC.encode(ftype, {"id": 1})


def test_binary_cold_types_stay_json():
    wire = BINARY_CODEC.encode(FrameType.ERROR, {"id": 7, "code": "failed"})
    ((ftype, payload),) = decode_frames(wire, BINARY_CODEC)
    assert ftype is FrameType.ERROR
    assert payload == {"id": 7, "code": "failed"}


# ----------------------------------------------------------- codec switching
def test_set_codec_switches_at_frame_boundary():
    """JSON frames before the switch, packed frames after — one feed."""
    decoder = FrameDecoder()
    json_part = encode_frame(FrameType.HELLO, {"id": 1, "codec": CODEC_BINARY})
    frames = decoder.feed(json_part)
    assert frames == [(FrameType.HELLO, {"id": 1, "codec": CODEC_BINARY})]
    decoder.set_codec(BINARY_CODEC)
    packed = BinaryCodecV2.encode_infer(9, 1, 2.5)
    ((ftype, payload),) = decoder.feed(packed)
    assert ftype is FrameType.INFER
    assert payload == (9, 1, 2.5)
    # And back: a repeated negotiation can return to JSON.
    decoder.set_codec(JSON_CODEC)
    ((ftype, payload),) = decoder.feed(encode_frame(FrameType.DRAIN, {"id": 2}))
    assert payload == {"id": 2}


# ------------------------------------------------- JSON float round-tripping
@settings(max_examples=500)
@given(value=_finite)
def test_json_roundtrips_finite_doubles_bit_exact(value):
    """The JSON codec's float-identity license: Python emits shortest
    round-trip repr and parses it back to the identical double. Capture
    summaries key on raw floats because of this property — if it ever
    breaks (a different JSON library, a float_repr change), this is the
    test that names the culprit."""
    out = json.loads(json.dumps(value))
    assert _bits(out) == _bits(value)


def test_json_cannot_carry_nan():
    """Why the binary codec exists: strict JSON has no NaN/inf, so the
    wire uses NaN-in-packed-records for 'no value' and the JSON path must
    omit such fields instead."""
    with pytest.raises(ValueError):
        json.dumps(float("nan"), allow_nan=False)
    assert math.isnan(
        struct.unpack("!d", _bits(float("nan")))[0]
    )  # packed NaN survives


# ------------------------------------------------------- live negotiation
MODELS = ("yolov2", "vgg19")


def test_hello_negotiation_and_model_table():
    async def run():
        server = NetServer(models=MODELS, mode="realtime")
        async with server:
            async with await AsyncNetClient.connect(
                "127.0.0.1", server.port
            ) as client:
                ack = await client.negotiate(CODEC_BINARY)
                assert ack["codec"] == CODEC_BINARY
                assert ack["models"] == sorted(MODELS)
                assert client.binary
                assert client.model_names == sorted(MODELS)
                result = await client.infer("yolov2")
                assert result.ok and result.model == "yolov2"

    asyncio.run(run())


def test_unknown_codec_refused_connection_survives():
    async def run():
        server = NetServer(models=MODELS, mode="realtime")
        async with server:
            async with await AsyncNetClient.connect(
                "127.0.0.1", server.port
            ) as client:
                with pytest.raises(Exception):
                    await client.negotiate("gzip-v9")
                assert not client.binary
                # The connection stays on JSON and keeps working.
                result = await client.infer("vgg19")
                assert result.ok and result.model == "vgg19"

    asyncio.run(run())


def test_mixed_codec_connections_do_not_cross_contaminate():
    """One server, two live connections, one codec each: every result
    goes back on its own connection in its own codec, bit-for-bit equal
    across the two replays."""
    items = WorkloadGenerator(MODELS, seed=9).generate(
        Scenario("mixed", 30.0, "medium", 60)
    )

    async def run():
        server = NetServer(models=MODELS, mode="realtime")
        async with server:
            json_client = await AsyncNetClient.connect(
                "127.0.0.1", server.port
            )
            bin_client = await AsyncNetClient.connect(
                "127.0.0.1", server.port, codec=CODEC_BINARY
            )
            try:
                futs = []
                for i, item in enumerate(items):
                    client = bin_client if i % 2 else json_client
                    futs.append(await client.submit(item.model_name))
                results = await asyncio.gather(*futs)
                assert len(json_client.received) == (len(items) + 1) // 2
                assert len(bin_client.received) == len(items) // 2
                for r in results:
                    assert r.outcome in TAG_OUTCOMES
                    assert r.model in MODELS
            finally:
                await json_client.close()
                await bin_client.close()

    asyncio.run(run())


def test_repeat_hello_refreshes_model_table():
    async def run():
        server = NetServer(models=("yolov2",), mode="realtime")
        async with server:
            async with await AsyncNetClient.connect(
                "127.0.0.1", server.port, codec=CODEC_BINARY
            ) as client:
                assert client.model_names == ["yolov2"]
                await client.register("vgg19")
                # The first table predates the deploy; re-HELLO sees it.
                ack = await client.negotiate(CODEC_BINARY)
                assert ack["models"] == ["vgg19", "yolov2"]
                result = await client.infer("vgg19")
                assert result.ok and result.model == "vgg19"

    asyncio.run(run())
