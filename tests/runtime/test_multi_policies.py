"""Placement-policy behaviour of the multi-processor engine.

Per-router placement assertions under block-boundary preemption, a
hypothesis conservation property (every submitted request reaches exactly
one terminal, for every router and processor count), and the features the
kernel unification added to the multi engine: fault injection and
streaming sinks.
"""

from __future__ import annotations

import zlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.robustness.config import LoadShedConfig, RobustnessConfig
from repro.robustness.faults import FaultPlan
from repro.robustness.retry import RetryPolicy
from repro.runtime.metrics import StreamingQoS, robustness_totals
from repro.runtime.multi import ROUTERS, MultiProcessorEngine
from repro.scheduling.policies import FIFOScheduler, SplitScheduler
from repro.scheduling.request import Request, TaskSpec
from repro.splitting.elastic import ElasticSplitConfig
from repro.utils.rng import rng_from


def split_scheduler():
    """Split policy with elastic mode pinned off: long models always run
    their block plans, so block-boundary preemption stays observable even
    when the test workload drives the queue deep."""
    return SplitScheduler(elastic=ElasticSplitConfig(enabled=False))


def spec(name="m", ext=10.0, blocks=None):
    return TaskSpec(name=name, ext_ms=ext, blocks_ms=blocks or (ext,))


def arrivals(*items):
    return [
        (t, Request(task=spec(name, ext, blocks), arrival_ms=t))
        for t, name, ext, blocks in items
    ]


def preemptive_mix(n=120, lam=10.0, seed=0):
    """Long split models + short unsplit ones: short arrivals preempt
    long residents at block boundaries under the split scheduler."""
    rng = rng_from(seed, "multi-policies")
    out, t = [], 0.0
    for i in range(n):
        t += float(rng.exponential(lam))
        # i % 4, deliberately coprime with the 3-processor round-robin
        # stride, so longs and shorts interleave on every processor.
        if i % 4 == 0:
            out.append((t, "long", 60.0, (20.0, 20.0, 20.0)))
        else:
            out.append((t, f"short{i % 2}", 8.0, None))
    return arrivals(*out)


def run_router(router, k=3, **kwargs):
    engine = MultiProcessorEngine(
        [split_scheduler() for _ in range(k)], router=router, **kwargs
    )
    arr = preemptive_mix()
    return arr, engine.run(arr)


class TestPlacementPerPolicy:
    def test_round_robin_is_modular(self):
        arr, res = run_router("round_robin")
        n = len(arr)
        assert res.placements == {
            i: len(range(i, n, 3)) for i in range(3)
        }
        assert res.engine_result.preemptions > 0

    def test_least_backlog_prefers_empty_processor(self):
        # A long block occupies processor 0; the next arrival must land
        # on an idle one.
        engine = MultiProcessorEngine(
            [split_scheduler(), split_scheduler()], router="least_backlog"
        )
        res = engine.run(
            arrivals(
                (0.0, "long", 60.0, (30.0, 30.0)),
                (1.0, "short", 5.0, None),
            )
        )
        assert res.placements == {0: 1, 1: 1}
        by_name = {r.task_type: r for r in res.completed}
        # Landing on the empty processor means no queueing delay at all.
        assert by_name["short"].finish_ms == pytest.approx(6.0)

    def test_shortest_queue_balances_simultaneous_burst(self):
        engine = MultiProcessorEngine(
            [FIFOScheduler(), FIFOScheduler()], router="shortest_queue"
        )
        res = engine.run(
            arrivals(*[(0.0, f"m{i}", 10.0, None) for i in range(4)])
        )
        assert res.placements == {0: 2, 1: 2}

    def test_model_affinity_is_sticky_under_preemption(self):
        arr, res = run_router("model_affinity", keep_trace=True)
        # Every model's blocks execute on exactly the processor its crc32
        # hash names — preemption reorders blocks but never migrates them.
        for idx, trace in res.traces.items():
            for entry in trace.entries:
                expected = zlib.crc32(entry.task_type.encode()) % 3
                assert expected == idx
        assert res.engine_result.preemptions > 0

    @pytest.mark.parametrize("router", sorted(ROUTERS))
    def test_preemption_bookkeeping_consistent(self, router):
        arr, res = run_router(router, keep_trace=True)
        assert len(res.completed) == len(arr)
        res.verify_traces()
        # Per-request preemption counts sum to the engine counter.
        assert (
            sum(r.preemptions for r in res.completed)
            == res.engine_result.preemptions
        )


@st.composite
def workloads(draw):
    gaps = draw(
        st.lists(
            st.floats(min_value=0.0, max_value=30.0, allow_nan=False),
            min_size=1,
            max_size=25,
        )
    )
    shapes = draw(
        st.lists(
            st.sampled_from(
                [("short", 6.0, None), ("long", 24.0, (12.0, 12.0))]
            ),
            min_size=len(gaps),
            max_size=len(gaps),
        )
    )
    t, out = 0.0, []
    for gap, (name, ext, blocks) in zip(gaps, shapes):
        t += gap
        out.append((t, name, ext, blocks))
    return out


class TestConservation:
    @settings(max_examples=40, deadline=None)
    @given(items=workloads(), k=st.integers(1, 4), router=st.sampled_from(sorted(ROUTERS)))
    def test_every_request_reaches_one_terminal(self, items, k, router):
        """served + dropped == submitted for every router and processor
        count — no request is lost or double-counted by routing."""
        engine = MultiProcessorEngine(
            [split_scheduler() for _ in range(k)], router=router
        )
        res = engine.run(arrivals(*items))
        er = res.engine_result
        assert er.n_completed + er.n_dropped == len(items)
        assert len(er.completed) + len(er.dropped) == len(items)
        assert sum(res.placements.values()) == len(items)


CHAOS = RobustnessConfig(
    faults=FaultPlan(seed=11, fail_rate=0.10, stall_rate=0.05, drop_rate=0.02),
    retry=RetryPolicy(max_retries=2, backoff_base_ms=2.0),
    timeout_rr=40.0,
)


class TestMultiRobustness:
    @pytest.mark.parametrize("router", sorted(ROUTERS))
    def test_fault_injection_conserves_requests(self, router):
        """The kernel unification gave the multi engine the robustness
        layer: outcomes still partition the submitted set."""
        arr = preemptive_mix(n=150, seed=4)
        engine = MultiProcessorEngine(
            [split_scheduler() for _ in range(3)],
            router=router,
            robustness=CHAOS,
        )
        res = engine.run(arr)
        totals = robustness_totals(res.engine_result)
        assert totals["submitted"] == len(arr)
        assert totals["failed"] + totals["timed_out"] > 0
        assert sum(res.placements.values()) == len(arr)

    def test_load_shedding_per_processor(self):
        cfg = RobustnessConfig(
            load_shed=LoadShedConfig(max_queue_depth=2),
        )
        engine = MultiProcessorEngine(
            [FIFOScheduler(), FIFOScheduler()],
            router="round_robin",
            robustness=cfg,
        )
        burst = arrivals(*[(0.0, f"m{i}", 50.0, None) for i in range(12)])
        res = engine.run(burst)
        totals = robustness_totals(res.engine_result)
        assert totals["shed"] > 0
        assert totals["submitted"] == 12

    def test_run_stream_matches_run(self):
        arr_batch = preemptive_mix(n=200, seed=9)
        arr_stream = preemptive_mix(n=200, seed=9)
        engine = lambda: MultiProcessorEngine(
            [split_scheduler() for _ in range(3)],
            router="least_backlog",
            robustness=CHAOS,
        )
        batch = engine().run(arr_batch)
        qos = StreamingQoS()
        stream = engine().run_stream(iter(arr_stream), qos.observe)
        bt = robustness_totals(batch.engine_result)
        st_ = qos.totals()
        for key in ("served", "rejected", "shed", "failed", "timed_out"):
            assert st_[key] == bt[key], key
        assert qos.n_requests == bt["submitted"]
        assert stream.placements == batch.placements
