"""SequentialEngine: correctness of the discrete-event execution."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime.engine import SequentialEngine
from repro.scheduling.policies import (
    FIFOScheduler,
    PremaScheduler,
    SplitScheduler,
)
from repro.scheduling.request import Request, TaskSpec
from repro.types import RequestClass


def spec(name="m", ext=10.0, blocks=None, cls=RequestClass.SHORT):
    return TaskSpec(
        name=name, ext_ms=ext, blocks_ms=blocks or (ext,), request_class=cls
    )


def arrivals(*items):
    """items: (time, name, ext, blocks)."""
    out = []
    for t, name, ext, blocks in items:
        out.append((t, Request(task=spec(name, ext, blocks), arrival_ms=t)))
    return out


class TestBasicExecution:
    def test_single_request(self):
        eng = SequentialEngine(FIFOScheduler(), keep_trace=True)
        res = eng.run(arrivals((0.0, "a", 10.0, None)))
        assert len(res.completed) == 1
        assert res.completed[0].finish_ms == 10.0
        res.trace.verify()

    def test_back_to_back_fifo(self):
        eng = SequentialEngine(FIFOScheduler())
        res = eng.run(
            arrivals((0.0, "a", 10.0, None), (1.0, "b", 5.0, None))
        )
        by_name = {r.task_type: r for r in res.completed}
        assert by_name["a"].finish_ms == 10.0
        assert by_name["b"].finish_ms == 15.0

    def test_idle_gap_between_requests(self):
        eng = SequentialEngine(FIFOScheduler())
        res = eng.run(
            arrivals((0.0, "a", 10.0, None), (100.0, "b", 5.0, None))
        )
        by_name = {r.task_type: r for r in res.completed}
        assert by_name["b"].finish_ms == 105.0

    def test_arrival_during_block_waits(self):
        eng = SequentialEngine(FIFOScheduler())
        res = eng.run(
            arrivals((0.0, "a", 10.0, None), (3.0, "b", 5.0, None))
        )
        b = next(r for r in res.completed if r.task_type == "b")
        assert b.first_start_ms == 10.0

    def test_empty_run(self):
        res = SequentialEngine(FIFOScheduler()).run([])
        assert res.completed == []


class TestBlockPreemption:
    def test_short_preempts_long_at_block_boundary(self):
        eng = SequentialEngine(SplitScheduler(), keep_trace=True)
        res = eng.run(
            arrivals(
                (0.0, "long", 40.0, (20.0, 20.0)),
                (5.0, "short", 5.0, None),
            )
        )
        by_name = {r.task_type: r for r in res.completed}
        # Short runs after the long's first block: 20 + 5 = 25.
        assert by_name["short"].finish_ms == 25.0
        assert by_name["long"].finish_ms == 45.0
        # The long request was preempted once (no overhead under SPLIT,
        # but the event is still counted).
        assert by_name["long"].preemptions == 1
        res.trace.verify()
        order = [(e.task_type, e.block_index) for e in res.trace.entries]
        assert order == [("long", 0), ("short", 0), ("long", 1)]

    def test_no_mid_block_interruption(self):
        eng = SequentialEngine(SplitScheduler(), keep_trace=True)
        res = eng.run(
            arrivals(
                (0.0, "long", 40.0, (40.0,)),  # unsplit: one block
                (5.0, "short", 5.0, None),
            )
        )
        by_name = {r.task_type: r for r in res.completed}
        assert by_name["short"].finish_ms == 45.0

    def test_full_preemption_defers_all_blocks(self):
        """Fig. 3: the preempted request's remaining blocks stay together."""
        eng = SequentialEngine(SplitScheduler(), keep_trace=True)
        res = eng.run(
            arrivals(
                (0.0, "long", 60.0, (20.0, 20.0, 20.0)),
                (5.0, "short", 5.0, (2.5, 2.5)),
            )
        )
        order = [(e.task_type, e.block_index) for e in res.trace.entries]
        assert order == [
            ("long", 0),
            ("short", 0),
            ("short", 1),
            ("long", 1),
            ("long", 2),
        ]

    def test_preemption_overhead_charged(self):
        sched = PremaScheduler(preemption_overhead_ms=2.0)
        eng = SequentialEngine(sched, keep_trace=True)
        # Long task low priority, short arrives mid-way with high priority.
        long_spec = TaskSpec(
            name="long", ext_ms=40.0, blocks_ms=(20.0, 20.0),
            request_class=RequestClass.LONG,
        )
        short_spec = TaskSpec(
            name="short", ext_ms=5.0, blocks_ms=(5.0,),
            request_class=RequestClass.SHORT,
        )
        res = eng.run(
            [
                (0.0, Request(task=long_spec, arrival_ms=0.0)),
                (5.0, Request(task=short_spec, arrival_ms=5.0)),
            ]
        )
        by_name = {r.task_type: r for r in res.completed}
        # short: starts at 20 + 2.0 overhead, finishes 27.
        assert by_name["short"].finish_ms == pytest.approx(27.0)
        assert res.preemptions == 1
        assert by_name["long"].preemptions == 1


class TestInvariants:
    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=500.0, allow_nan=False),
                st.sampled_from(["a", "b", "c"]),
                st.sampled_from([(10.0,), (5.0, 5.0), (4.0, 3.0, 3.0)]),
            ),
            min_size=1,
            max_size=25,
        ),
        st.sampled_from(["fifo", "split", "prema"]),
    )
    @settings(max_examples=60, deadline=None)
    def test_engine_invariants_hold(self, items, policy):
        sched = {
            "fifo": FIFOScheduler,
            "split": SplitScheduler,
            "prema": PremaScheduler,
        }[policy]()
        arr = []
        for t, name, blocks in items:
            s = TaskSpec(name=name, ext_ms=sum(blocks), blocks_ms=blocks)
            arr.append((t, Request(task=s, arrival_ms=t)))
        res = SequentialEngine(sched, keep_trace=True).run(arr)
        # Conservation: everything admitted completes.
        assert len(res.completed) + len(res.dropped) == len(arr)
        res.trace.verify()
        for r in res.completed:
            assert r.finish_ms >= r.arrival_ms
            assert r.blocks_left == 0
            # Completion no earlier than arrival + own work.
            own = sum(r.plan_ms)
            assert r.finish_ms >= r.arrival_ms + own - 1e-9

    def test_busy_time_equals_total_work_fifo(self):
        arr = arrivals(
            (0.0, "a", 10.0, None),
            (1.0, "b", 7.0, (3.0, 4.0)),
            (2.0, "c", 3.0, None),
        )
        res = SequentialEngine(FIFOScheduler(), keep_trace=True).run(arr)
        # FIFO plans are whole-model => busy = 10 + 7 + 3... but FIFO
        # overrides plans to (ext,), so busy = 20.
        assert res.trace.busy_ms() == pytest.approx(20.0)
