"""EventKernel unit surface: validators, adapters, hooks, shims.

The differential suite (``test_kernel_differential.py``) pins *what* the
kernel computes; this file pins the kernel's own API contract — the
shared arrival validators and their canonical messages (one format for
every entry point), queue-adapter routing errors, the ordering and
arguments of every :class:`KernelHooks` lifecycle callback, and the
deprecation shims left on :class:`SequentialEngine`.
"""

from __future__ import annotations

import warnings

import pytest

from repro.errors import SimulationError
from repro.robustness.config import RobustnessConfig
from repro.robustness.faults import FaultPlan
from repro.robustness.retry import RetryPolicy
from repro.runtime.engine import SequentialEngine
from repro.runtime.kernel import (
    EngineResult,
    EventKernel,
    Hooks,
    RoutedQueues,
    batch_sink,
    validate_batch_arrivals,
    validated_stream,
)
from repro.runtime.multi import MultiProcessorEngine
from repro.scheduling.policies import FIFOScheduler, SplitScheduler
from repro.scheduling.request import Request, TaskSpec


def spec(name="m", ext=10.0, blocks=None):
    return TaskSpec(name=name, ext_ms=ext, blocks_ms=blocks or (ext,))


def arrivals(*items):
    return [
        (t, Request(task=spec(name, ext, blocks), arrival_ms=t))
        for t, name, ext, blocks in items
    ]


PREEMPTIVE = (
    (0.0, "long", 40.0, (20.0, 20.0)),
    (5.0, "short", 5.0, None),
)


class TestValidators:
    def test_batch_rejects_negative(self):
        with pytest.raises(SimulationError, match="negative arrival time"):
            validate_batch_arrivals(arrivals((-1.0, "a", 10.0, None)))

    def test_stream_rejects_negative(self):
        stream = validated_stream(iter(arrivals((-0.5, "a", 10.0, None))))
        with pytest.raises(SimulationError, match="negative arrival time"):
            next(stream)

    def test_stream_rejects_disorder(self):
        stream = validated_stream(
            iter(arrivals((5.0, "a", 10.0, None), (3.0, "b", 10.0, None)))
        )
        next(stream)
        with pytest.raises(
            SimulationError, match="arrival stream not time-ordered: 3.0 after 5.0"
        ):
            next(stream)

    def test_every_entry_point_shares_the_message(self):
        """One validator, one format — sequential, multi and concurrent."""
        from repro.hardware.contention import ContentionModel
        from repro.hardware.presets import jetson_nano
        from repro.runtime.executor import ConcurrentEngine

        bad = arrivals((-2.0, "a", 10.0, None))
        engines = [
            SequentialEngine(FIFOScheduler()),
            MultiProcessorEngine([FIFOScheduler()]),
            ConcurrentEngine(ContentionModel(jetson_nano())),
        ]
        for engine in engines:
            with pytest.raises(
                SimulationError, match=r"negative arrival time -2\.0"
            ):
                engine.run(list(bad))

    def test_multi_stream_validates_order(self):
        engine = MultiProcessorEngine([FIFOScheduler(), FIFOScheduler()])
        bad = iter(arrivals((5.0, "a", 10.0, None), (1.0, "b", 10.0, None)))
        with pytest.raises(SimulationError, match="not time-ordered"):
            engine.run_stream(bad, lambda req, outcome: None)


class TestAdapters:
    def test_needs_processors(self):
        with pytest.raises(SimulationError, match="need at least one processor"):
            EventKernel([])

    @pytest.mark.parametrize("target", [-1, 2])
    def test_router_range_checked(self, target):
        engine = MultiProcessorEngine(
            [FIFOScheduler(), FIFOScheduler()], router=lambda ps, r: target
        )
        with pytest.raises(
            SimulationError, match=f"router returned invalid processor {target}"
        ):
            engine.run(arrivals((0.0, "a", 10.0, None)))


class Recorder(Hooks):
    def __init__(self):
        self.events: list[tuple] = []

    def on_admit(self, request, now_ms, admitted, proc_index):
        self.events.append(("admit", request.task_type, now_ms, admitted))

    def on_dispatch(self, request, now_ms, block_ms, proc_index):
        self.events.append(("dispatch", request.task_type, now_ms, block_ms))

    def on_block_finish(
        self, request, block_index, start_ms, end_ms, failed, proc_index
    ):
        self.events.append(
            ("finish", request.task_type, block_index, start_ms, end_ms, failed)
        )

    def on_preempt(self, preempted, by, now_ms, proc_index):
        self.events.append(
            ("preempt", preempted.task_type, by.task_type, now_ms)
        )

    def on_retry(self, request, ready_ms, proc_index):
        self.events.append(("retry", request.task_type, ready_ms))

    def on_terminal(self, request, outcome, now_ms):
        self.events.append(("terminal", request.task_type, outcome, now_ms))

    def of(self, kind):
        return [e for e in self.events if e[0] == kind]


class TestHooks:
    def test_fault_free_lifecycle(self):
        hooks = Recorder()
        result = SequentialEngine(SplitScheduler(), hooks=hooks).run(
            arrivals(*PREEMPTIVE)
        )
        assert result.preemptions == 1
        # The short request preempts the long one at its first block
        # boundary (t=20) and the hook sees exactly that edge.
        assert hooks.of("preempt") == [("preempt", "long", "short", 20.0)]
        # Three blocks execute: long[0], short[0], long[1].
        dispatched = [e[1] for e in hooks.of("dispatch")]
        assert dispatched == ["long", "short", "long"]
        assert len(hooks.of("finish")) == 3
        assert all(not e[5] for e in hooks.of("finish"))
        # Every request reaches exactly one terminal, at its finish time.
        terminals = {(e[1], e[2]) for e in hooks.of("terminal")}
        assert terminals == {("long", "served"), ("short", "served")}
        # Admissions fire once per arrival with the arrival time.
        assert [(e[1], e[2], e[3]) for e in hooks.of("admit")] == [
            ("long", 0.0, True),
            ("short", 5.0, True),
        ]
        # Dispatch/finish pair up: same count, finish ends at block_end.
        assert len(hooks.of("dispatch")) == len(hooks.of("finish"))

    def test_retry_and_failure_edges(self):
        hooks = Recorder()
        cfg = RobustnessConfig(
            faults=FaultPlan(seed=0, fail_rate=1.0),
            retry=RetryPolicy(max_retries=2, backoff_base_ms=2.0),
        )
        result = SequentialEngine(
            FIFOScheduler(), robustness=cfg, hooks=hooks
        ).run(arrivals((0.0, "a", 10.0, None)))
        # fail_rate=1.0: initial attempt + 2 retries all fail.
        assert result.fault_fails == 3
        assert [e[0] for e in hooks.of("retry")] == ["retry", "retry"]
        # Backoff doubles: ready at finish+2 then finish+4.
        r0, r1 = hooks.of("retry")
        assert r1[2] - r0[2] > 0
        assert hooks.of("terminal") == [
            ("terminal", "a", "failed", pytest.approx(r1[2] + 10.0))
        ]
        finishes = hooks.of("finish")
        assert len(finishes) == 3 and all(e[5] for e in finishes)

    def test_hooks_are_observation_only(self):
        """The same schedule with and without hooks attached is identical."""
        bare = SequentialEngine(SplitScheduler(), keep_trace=True).run(
            arrivals(*PREEMPTIVE)
        )
        hooked = SequentialEngine(
            SplitScheduler(), keep_trace=True, hooks=Recorder()
        ).run(arrivals(*PREEMPTIVE))
        strip = lambda t: [
            (e.task_type, e.block_index, e.start_ms, e.end_ms)
            for e in t.entries
        ]
        assert strip(hooked.trace) == strip(bare.trace)

    def test_multi_hooks_carry_proc_index(self):
        seen: set[int] = set()

        class ProcRecorder(Hooks):
            def on_dispatch(self, request, now_ms, block_ms, proc_index):
                seen.add(proc_index)

        MultiProcessorEngine(
            [FIFOScheduler(), FIFOScheduler()],
            router="round_robin",
            hooks=ProcRecorder(),
        ).run(arrivals((0.0, "a", 10.0, None), (0.0, "b", 10.0, None)))
        assert seen == {0, 1}


class TestNoDeprecationSurface:
    def test_shims_are_gone(self):
        # The PR-4 forwarding wrappers served their one-release notice.
        engine = SequentialEngine(FIFOScheduler())
        assert not hasattr(engine, "_event_loop")
        assert not hasattr(engine, "_run_robust")

    def test_public_paths_do_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            SequentialEngine(FIFOScheduler()).run(arrivals(*PREEMPTIVE))
            SequentialEngine(
                FIFOScheduler(), robustness=RobustnessConfig()
            ).run(arrivals(*PREEMPTIVE))
