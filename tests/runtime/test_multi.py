"""Multi-processor dispatch engine."""

import pytest

from repro.errors import SimulationError
from repro.runtime.multi import (
    ROUTERS,
    MultiProcessorEngine,
    least_backlog,
)
from repro.scheduling.policies import FIFOScheduler, SplitScheduler
from repro.scheduling.request import Request, TaskSpec
from repro.utils.rng import rng_from


def spec(name="m", ext=10.0, blocks=None):
    return TaskSpec(name=name, ext_ms=ext, blocks_ms=blocks or (ext,))


def arrivals(*items):
    return [
        (t, Request(task=spec(name, ext, blocks), arrival_ms=t))
        for t, name, ext, blocks in items
    ]


def poisson_arrivals(n=200, lam=20.0, seed=0):
    rng = rng_from(seed, "multi-test")
    out = []
    t = 0.0
    exts = (10.0, 30.0, 65.0)
    for i in range(n):
        t += float(rng.exponential(lam))
        ext = exts[i % 3]
        out.append(
            (t, Request(task=spec(f"m{i % 3}", ext), arrival_ms=t))
        )
    return out


class TestConstruction:
    def test_needs_processors(self):
        with pytest.raises(SimulationError):
            MultiProcessorEngine([])

    def test_unknown_router(self):
        with pytest.raises(SimulationError, match="unknown router"):
            MultiProcessorEngine([FIFOScheduler()], router="bogus")

    def test_custom_router_callable(self):
        eng = MultiProcessorEngine(
            [FIFOScheduler(), FIFOScheduler()], router=lambda ps, r: 1
        )
        res = eng.run(arrivals((0.0, "a", 10.0, None)))
        assert res.placements == {0: 0, 1: 1}


class TestCorrectness:
    @pytest.mark.parametrize("router", sorted(ROUTERS))
    def test_conservation_every_router(self, router):
        eng = MultiProcessorEngine(
            [SplitScheduler(), SplitScheduler()], router=router, keep_trace=True
        )
        arr = poisson_arrivals()
        res = eng.run(arr)
        assert len(res.completed) == len(arr)
        res.verify_traces()
        assert sum(res.placements.values()) == len(arr)

    def test_single_processor_equals_sequential(self):
        """k=1 must reproduce the single-processor engine exactly."""
        from repro.runtime.engine import SequentialEngine

        arr1 = poisson_arrivals(seed=3)
        arr2 = poisson_arrivals(seed=3)
        multi = MultiProcessorEngine([SplitScheduler()], router="round_robin")
        single = SequentialEngine(SplitScheduler())
        r_multi = multi.run(arr1)
        r_single = single.run(arr2)
        f_multi = sorted((r.arrival_ms, r.finish_ms) for r in r_multi.completed)
        f_single = sorted(
            (r.arrival_ms, r.finish_ms) for r in r_single.completed
        )
        assert f_multi == pytest.approx(f_single)

    def test_parallel_processors_run_concurrently(self):
        eng = MultiProcessorEngine(
            [FIFOScheduler(), FIFOScheduler()], router="round_robin"
        )
        res = eng.run(
            arrivals((0.0, "a", 10.0, None), (0.0, "b", 10.0, None))
        )
        finishes = sorted(r.finish_ms for r in res.completed)
        assert finishes == [pytest.approx(10.0), pytest.approx(10.0)]

    def test_two_processors_cut_latency_under_load(self):
        arr1 = poisson_arrivals(lam=18.0, seed=5)
        arr2 = poisson_arrivals(lam=18.0, seed=5)
        one = MultiProcessorEngine([SplitScheduler()]).run(arr1)
        two = MultiProcessorEngine(
            [SplitScheduler(), SplitScheduler()], router="least_backlog"
        ).run(arr2)
        mean_one = sum(r.e2e_ms() for r in one.completed) / len(one.completed)
        mean_two = sum(r.e2e_ms() for r in two.completed) / len(two.completed)
        assert mean_two < mean_one

    def test_least_backlog_beats_round_robin_with_skewed_work(self):
        """Alternating long/short arrivals make round-robin pile all longs
        on one processor; backlog routing balances."""
        items = []
        t = 0.0
        for i in range(60):
            t += 8.0
            name, ext = ("long", 67.5) if i % 2 == 0 else ("short", 10.8)
            items.append((t, name, ext, None))
        rr = MultiProcessorEngine(
            [FIFOScheduler(), FIFOScheduler()], router="round_robin"
        ).run(arrivals(*items))
        lb = MultiProcessorEngine(
            [FIFOScheduler(), FIFOScheduler()], router="least_backlog"
        ).run(arrivals(*items))
        mean_rr = sum(r.e2e_ms() for r in rr.completed) / 60
        mean_lb = sum(r.e2e_ms() for r in lb.completed) / 60
        assert mean_lb < mean_rr

    def test_model_affinity_pins_models(self):
        eng = MultiProcessorEngine(
            [FIFOScheduler(), FIFOScheduler(), FIFOScheduler()],
            router="model_affinity",
        )
        arr = poisson_arrivals(n=90)
        res = eng.run(arr)
        # Affinity means every request of a model maps to one index;
        # recompute with the router's stable hash.
        import zlib

        by_model: dict[str, set[int]] = {}
        for _, req in arr:
            by_model.setdefault(req.task_type, set()).add(
                zlib.crc32(req.task_type.encode()) % 3
            )
        assert all(len(v) == 1 for v in by_model.values())
        assert len(res.completed) == len(arr)

    def test_preemption_still_local(self):
        """A short arrival preempts only on its own processor."""
        eng = MultiProcessorEngine(
            [SplitScheduler(), SplitScheduler()],
            router=lambda ps, r: 0,  # everything on processor 0
            keep_trace=True,
        )
        res = eng.run(
            arrivals(
                (0.0, "long", 40.0, (20.0, 20.0)),
                (5.0, "short", 5.0, None),
            )
        )
        by_name = {r.task_type: r for r in res.completed}
        assert by_name["short"].finish_ms == pytest.approx(25.0)
        assert res.placements[1] == 0
