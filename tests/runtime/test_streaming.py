"""Streaming pipeline: batch equivalence, backend bit-identity, StreamingQoS.

The load-bearing guarantees of the streaming rework:

* ``simulate_stream`` makes the *same scheduling decisions* as
  ``simulate`` — pinned per Table-2 scenario by exact violation-curve
  equality and, for the split policy, block-level trace equality;
* the deque+runs queue orders identically to the list-backed oracle when
  driven by the real engine (not just by the property-suite programs);
* :class:`StreamingQoS` reproduces :class:`QoSReport`'s numbers from a
  record stream in O(1) memory.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.runtime.engine import SequentialEngine
from repro.runtime.metrics import (
    DEFAULT_ALPHA_GRID,
    QoSReport,
    StreamingQoS,
    collect_records,
)
from repro.runtime.simulator import (
    _profiles_for,
    _request_classes,
    default_split_plans,
    simulate,
    simulate_stream,
)
from repro.runtime.workload import (
    SCENARIOS,
    Scenario,
    WorkloadGenerator,
    build_task_specs,
    materialize_stream,
)
from repro.scheduling.policies import SplitScheduler
from repro.scheduling.queue import ListBackedRequestQueue, RequestQueue

SMALL = Scenario("stream-small", 160.0, "low", n_requests=150)
HEAVY = Scenario("stream-heavy", 110.0, "high", n_requests=400)


def canonical_trace(trace):
    """Trace tuples with request ids renumbered by first appearance.

    ``Request.request_id`` comes from a process-global counter, so two
    runs of the same scenario disagree on raw ids; first-appearance
    order is the run-invariant identity.
    """
    ids: dict[int, int] = {}
    out = []
    for e in trace.entries:
        rid = ids.setdefault(e.request_id, len(ids))
        out.append((rid, e.task_type, e.block_index, e.start_ms, e.end_ms))
    return out


class TestBatchStreamEquivalence:
    @pytest.mark.parametrize("scenario", SCENARIOS, ids=lambda s: s.name)
    def test_table2_curves_identical(self, scenario):
        batch = simulate("split", scenario)
        stream = simulate_stream("split", scenario)
        grid = np.asarray(DEFAULT_ALPHA_GRID)
        assert np.array_equal(
            batch.report.violation_curve(grid), stream.qos.violation_curve()
        )
        assert stream.qos.n_requests == batch.report.n_requests
        assert stream.qos.n_dropped == batch.report.n_dropped

    @pytest.mark.parametrize("policy", ["prema", "fifo", "edf", "sjf"])
    def test_other_policies_agree(self, policy):
        batch = simulate(policy, HEAVY)
        stream = simulate_stream(policy, HEAVY)
        grid = np.asarray(DEFAULT_ALPHA_GRID)
        assert np.array_equal(
            batch.report.violation_curve(grid), stream.qos.violation_curve()
        )

    def test_split_trace_bit_identical(self):
        batch = simulate("split", HEAVY, keep_trace=True)
        stream = simulate_stream("split", HEAVY, keep_trace=True)
        assert canonical_trace(batch.engine_result.trace) == canonical_trace(
            stream.engine_result.trace
        )

    def test_scalar_metrics_match(self):
        batch = simulate("split", HEAVY)
        stream = simulate_stream("split", HEAVY)
        rep, qos = batch.report, stream.qos
        assert qos.mean_latency_ms() == pytest.approx(
            np.mean(rep.latencies_for()), abs=1e-9
        )
        assert qos.jitter_ms() == pytest.approx(rep.jitter_ms(), abs=1e-9)
        assert qos.mean_response_ratio() == pytest.approx(
            rep.mean_response_ratio(), abs=1e-9
        )
        assert qos.models() == rep.models()
        assert qos.preemption_count() == rep.preemption_count()

    def test_rta_not_streamable(self):
        with pytest.raises(SimulationError, match="not .*streamable|streamable"):
            simulate_stream("rta", SMALL)

    def test_shared_accumulator_spans_scenarios(self):
        qos = StreamingQoS()
        simulate_stream("split", SMALL, qos=qos)
        simulate_stream("split", HEAVY, qos=qos)
        assert qos.n_requests == SMALL.n_requests + HEAVY.n_requests


class TestBackendBitIdentity:
    """The deque+runs queue vs the list oracle under the real engine."""

    def _trace(self, queue_cls):
        models = ("yolov2", "googlenet", "resnet50", "vgg19", "gpt2")
        profiles = _profiles_for(models, "jetson-nano")
        specs = build_task_specs(
            profiles,
            split_plans=default_split_plans(models, "jetson-nano"),
            plan_kind="split",
            request_classes=_request_classes(models),
        )
        engine = SequentialEngine(
            SplitScheduler(), keep_trace=True, queue_cls=queue_cls
        )
        qos = StreamingQoS()
        arrivals = WorkloadGenerator(models, seed=0).iter_arrivals(HEAVY)
        result = engine.run_stream(materialize_stream(arrivals, specs), qos.observe)
        return canonical_trace(result.trace), qos

    def test_traces_and_curves_equal(self):
        fast_trace, fast_qos = self._trace(RequestQueue)
        slow_trace, slow_qos = self._trace(ListBackedRequestQueue)
        assert fast_trace == slow_trace
        assert np.array_equal(
            fast_qos.violation_counts(), slow_qos.violation_counts()
        )
        assert fast_qos.totals() == slow_qos.totals()


class TestStreamingQoSUnit:
    def test_grid_must_be_increasing(self):
        with pytest.raises(SimulationError, match="strictly increasing"):
            StreamingQoS(alphas=[2.0, 2.0, 3.0])
        with pytest.raises(SimulationError, match="non-empty"):
            StreamingQoS(alphas=[])
        with pytest.raises(SimulationError, match="histogram"):
            StreamingQoS(hist_bin_ms=0.0)

    def test_off_grid_alpha_rejected(self):
        qos = StreamingQoS(alphas=[2.0, 4.0])
        qos._add(model="m", e2e_ms=10.0, ext_ms=1.0, task_alpha=1.0,
                 outcome="served", retries=0, preemptions=0)
        with pytest.raises(SimulationError, match="not on the streaming grid"):
            qos.violation_rate(3.0)

    def test_empty_accumulator_is_nan(self):
        qos = StreamingQoS()
        assert math.isnan(qos.violation_rate(2.0))
        assert np.isnan(qos.violation_curve()).all()
        assert math.isnan(qos.mean_latency_ms())
        assert math.isnan(qos.latency_percentile(95))
        assert qos.n_requests == 0

    def test_matches_report_from_records(self):
        """Feeding a QoSReport's own records through add_record reproduces
        its curve exactly — the streaming path is a re-aggregation, not an
        approximation."""
        result = simulate("split", HEAVY)
        report = QoSReport(collect_records(result.engine_result))
        qos = StreamingQoS()
        for record in report.records:
            qos.add_record(record)
        grid = np.asarray(DEFAULT_ALPHA_GRID)
        assert np.array_equal(
            report.violation_curve(grid), qos.violation_curve()
        )
        assert qos.n_dropped == report.n_dropped

    def test_percentile_brackets_order_statistic(self):
        qos = StreamingQoS(hist_bin_ms=1.0, hist_bins=128)
        latencies = [3.2, 7.9, 15.0, 15.4, 99.1, 2.0, 55.5]
        for lat in latencies:
            qos._add(model="m", e2e_ms=lat, ext_ms=1.0, task_alpha=1.0,
                     outcome="served", retries=0, preemptions=0)
        for q in (50, 90, 95, 99):
            stat = sorted(latencies)[
                min(max(math.ceil(q / 100 * len(latencies)), 1), len(latencies)) - 1
            ]
            sp = qos.latency_percentile(q)
            assert 0.0 <= sp - stat <= 1.0 + 1e-9, (q, sp, stat)

    def test_percentile_overflow_is_inf(self):
        qos = StreamingQoS(hist_bin_ms=1.0, hist_bins=4)
        qos._add(model="m", e2e_ms=1e9, ext_ms=1.0, task_alpha=1.0,
                 outcome="served", retries=0, preemptions=0)
        assert qos.latency_percentile(99) == math.inf

    def test_dropped_requests_violate_everywhere(self):
        qos = StreamingQoS()
        qos._add(model="m", e2e_ms=math.inf, ext_ms=1.0, task_alpha=1.0,
                 outcome="rejected", retries=0, preemptions=0)
        assert (qos.violation_curve() == 1.0).all()
        assert qos.n_dropped == 1
        # Dropped requests contribute no latency samples.
        assert math.isnan(qos.mean_latency_ms())

    def test_unknown_outcome_rejected(self):
        qos = StreamingQoS()
        with pytest.raises(SimulationError, match="unknown terminal outcome"):
            qos._add(model="m", e2e_ms=1.0, ext_ms=1.0, task_alpha=1.0,
                     outcome="vanished", retries=0, preemptions=0)

    def test_totals_conservation(self):
        stream = simulate_stream("split", SMALL)
        totals = stream.qos.totals()
        assert totals["submitted"] == SMALL.n_requests
        assert (
            totals["served"] + totals["rejected"] + totals["shed"]
            + totals["failed"] + totals["timed_out"]
        ) == totals["submitted"]


class TestStreamingRobustness:
    """Streaming + fault injection, end to end.

    The kernel unification removed ``run_stream``'s fault-free
    restriction: robustness is a kernel feature, so the streaming path
    makes the same decisions as the batch path under the same config and
    the unhappy terminals reach the sink.
    """

    CHAOS = None  # built lazily to keep import-time side effects out

    @classmethod
    def chaos(cls):
        from repro.robustness.config import RobustnessConfig
        from repro.robustness.faults import FaultPlan
        from repro.robustness.retry import RetryPolicy

        if cls.CHAOS is None:
            cls.CHAOS = RobustnessConfig(
                faults=FaultPlan(seed=11, fail_rate=0.10, stall_rate=0.05),
                retry=RetryPolicy(max_retries=2, backoff_base_ms=2.0),
                timeout_rr=40.0,
            )
        return cls.CHAOS

    def _arrivals(self, scenario):
        from repro.runtime.simulator import _profiles_for, _request_classes
        from repro.runtime.workload import materialize_requests
        from repro.zoo.registry import EVALUATED_MODELS

        profiles = _profiles_for(EVALUATED_MODELS, "jetson-nano")
        classes = _request_classes(EVALUATED_MODELS)
        plans = default_split_plans(EVALUATED_MODELS, "jetson-nano")
        specs = build_task_specs(
            profiles, split_plans=plans, plan_kind="split",
            request_classes=classes,
        )
        items = WorkloadGenerator(EVALUATED_MODELS, seed=2).generate(scenario)
        return materialize_requests(items, specs)

    def test_run_stream_accepts_robustness(self):
        from repro.runtime.metrics import robustness_totals

        cfg = self.chaos()
        batch = SequentialEngine(SplitScheduler(), robustness=cfg).run(
            self._arrivals(SMALL)
        )
        qos = StreamingQoS()
        stream = SequentialEngine(SplitScheduler(), robustness=cfg).run_stream(
            iter(sorted(self._arrivals(SMALL), key=lambda p: p[0])),
            qos.observe,
        )
        bt = robustness_totals(batch)
        st = qos.totals()
        # (qos "retries" sums per-request failed attempts, which is a
        # different metric from the engine's parked-retry counter — the
        # engine counters are compared directly below.)
        for key in ("served", "rejected", "shed", "failed", "timed_out",
                    "submitted"):
            assert st[key] == bt[key], key
        assert bt["failed"] + bt["timed_out"] > 0  # chaos actually bit
        assert stream.retries == batch.retries
        assert stream.stalls == batch.stalls
        assert stream.fault_fails == batch.fault_fails

    def test_simulate_stream_robustness_matches_batch(self):
        cfg = self.chaos()
        batch = simulate("split", SMALL, seed=2, robustness=cfg)
        stream = simulate_stream("split", SMALL, seed=2, robustness=cfg)
        grid = np.asarray(DEFAULT_ALPHA_GRID)
        assert np.array_equal(
            batch.report.violation_curve(grid), stream.qos.violation_curve()
        )
        totals = stream.qos.totals()
        assert totals["submitted"] == SMALL.n_requests
        assert totals["failed"] + totals["timed_out"] > 0
