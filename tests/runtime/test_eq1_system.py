"""System-level Eq. 1 validation: the closed form predicts the *simulated*
waiting time of short arrivals against an executing split model.

This closes the loop between the paper's analysis (§3.1) and the engine:
Eq. 1 is derived for a random arrival during a block schedule; here actual
engine runs (one long request executing, one short arriving mid-flight)
must average to the same number.
"""

import numpy as np
import pytest

from repro.runtime.engine import SequentialEngine
from repro.scheduling.policies import SplitScheduler
from repro.scheduling.request import Request, TaskSpec
from repro.splitting.metrics import expected_waiting_latency_ms
from repro.utils.rng import rng_from


def _simulated_mean_wait(blocks: tuple[float, ...], n_samples: int = 400) -> float:
    """Mean waiting time of a short request arriving uniformly at random
    while a split long model executes."""
    total = sum(blocks)
    long_spec = TaskSpec(name="long", ext_ms=total, blocks_ms=blocks)
    short_spec = TaskSpec(name="short", ext_ms=1e-3, blocks_ms=(1e-3,))
    rng = rng_from(0, "eq1-system", blocks)
    waits = []
    for _ in range(n_samples):
        t_arr = float(rng.uniform(0.0, total))
        long_req = Request(task=long_spec, arrival_ms=0.0)
        short_req = Request(task=short_spec, arrival_ms=t_arr)
        engine = SequentialEngine(SplitScheduler())
        result = engine.run([(0.0, long_req), (t_arr, short_req)])
        short = next(r for r in result.completed if r.task_type == "short")
        waits.append(short.first_start_ms - short.arrival_ms)
    return float(np.mean(waits))


@pytest.mark.parametrize(
    "blocks",
    [
        (40.0,),
        (20.0, 20.0),
        (10.0, 10.0, 10.0, 10.0),
        (5.0, 35.0),
        (2.0, 8.0, 30.0),
    ],
)
def test_engine_wait_matches_eq1(blocks):
    predicted = expected_waiting_latency_ms(blocks)
    simulated = _simulated_mean_wait(blocks)
    assert simulated == pytest.approx(predicted, rel=0.12), (
        f"blocks={blocks}: sim {simulated:.2f} vs Eq.1 {predicted:.2f}"
    )


def test_even_split_halves_waiting_in_engine():
    """The headline mechanism, end to end: an even 2-split halves a short
    request's expected wait behind the long model."""
    whole = _simulated_mean_wait((40.0,))
    split = _simulated_mean_wait((20.0, 20.0))
    assert split == pytest.approx(whole / 2.0, rel=0.2)


def test_uneven_split_wastes_the_benefit():
    even = _simulated_mean_wait((20.0, 20.0))
    uneven = _simulated_mean_wait((36.0, 4.0))
    assert uneven > even * 1.5
