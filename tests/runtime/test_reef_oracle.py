"""The REEF-style kernel-level oracle policy (§6)."""

import pytest

from repro.runtime.simulator import simulate
from repro.runtime.workload import Scenario

SCEN = Scenario("oracle-test", 120.0, "high", n_requests=300)


@pytest.fixture(scope="module")
def runs():
    return {p: simulate(p, SCEN) for p in ("reef", "split", "clockwork")}


def test_oracle_at_least_as_good_as_split(runs):
    """Operator-granularity, zero-cost preemption bounds SPLIT from below."""
    reef = runs["reef"].report
    split = runs["split"].report
    assert reef.violation_rate(4.0) <= split.violation_rate(4.0) + 0.02
    assert reef.jitter_ms("yolov2") <= split.jitter_ms("yolov2") + 1.0


def test_oracle_crushes_fcfs(runs):
    reef = runs["reef"].report
    cw = runs["clockwork"].report
    assert reef.violation_rate(4.0) < cw.violation_rate(4.0)


def test_split_closes_most_of_the_gap(runs):
    """SPLIT should capture a large share of the oracle's improvement over
    ClockWork — the paper's hardware-independent compromise."""
    reef = runs["reef"].report.violation_rate(8.0)
    split = runs["split"].report.violation_rate(8.0)
    cw = runs["clockwork"].report.violation_rate(8.0)
    gap_total = cw - reef
    gap_captured = cw - split
    assert gap_total > 0
    assert gap_captured / gap_total > 0.5


def test_oracle_plans_are_operator_granular(runs):
    # Long-model requests carry per-operator plans.
    records = runs["reef"].engine_result.completed
    vgg = next(r for r in records if r.task_type == "vgg19")
    assert len(vgg.plan_ms) > 10
