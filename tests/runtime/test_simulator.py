"""simulate(): the full evaluation pipeline at reduced scale."""

import pytest

from repro.errors import SimulationError
from repro.runtime.simulator import POLICIES, default_split_plans, simulate
from repro.runtime.workload import Scenario
from repro.splitting.elastic import ElasticSplitConfig

SMALL = Scenario("small", 160.0, "low", n_requests=150)
HEAVY = Scenario("heavy", 110.0, "high", n_requests=150)


@pytest.fixture(scope="module")
def split_result():
    return simulate("split", SMALL, keep_trace=True)


class TestDefaultPlans:
    def test_only_long_models_split(self):
        plans = default_split_plans()
        assert set(plans) == {"resnet50", "vgg19"}
        for blocks in plans.values():
            assert len(blocks) >= 2

    def test_plans_cached(self):
        assert default_split_plans() is default_split_plans()

    def test_cached_plans_immutable(self):
        """Regression: the lru_cached mapping used to be a plain dict, so
        one caller's mutation corrupted every future hit."""
        plans = default_split_plans()
        with pytest.raises(TypeError):
            plans["resnet50"] = (1.0,)
        with pytest.raises(TypeError):
            del plans["vgg19"]

    def test_cached_profiles_immutable(self):
        from repro.runtime.simulator import EVALUATED_MODELS, _profiles_for

        profiles = _profiles_for(EVALUATED_MODELS, "jetson-nano")
        with pytest.raises(TypeError):
            profiles["resnet50"] = None


class TestSimulate:
    def test_unknown_policy(self):
        with pytest.raises(SimulationError, match="unknown policy"):
            simulate("bogus", SMALL)

    @pytest.mark.parametrize("policy", POLICIES)
    def test_every_policy_completes_all_requests(self, policy):
        r = simulate(policy, SMALL)
        assert r.report.n_requests == 150
        assert r.report.n_dropped == 0

    def test_trace_verifies(self, split_result):
        split_result.engine_result.trace.verify()

    def test_paired_arrivals_across_policies(self):
        a = simulate("split", SMALL)
        b = simulate("clockwork", SMALL)
        arr_a = sorted(r.arrival_ms for r in a.report.records)
        arr_b = sorted(r.arrival_ms for r in b.report.records)
        assert arr_a == arr_b

    def test_split_beats_clockwork_under_load(self):
        s = simulate("split", HEAVY)
        c = simulate("clockwork", HEAVY)
        assert s.report.violation_rate(4.0) < c.report.violation_rate(4.0)

    def test_split_reduces_short_jitter_vs_rta(self):
        s = simulate("split", HEAVY)
        r = simulate("rta", HEAVY)
        assert s.report.jitter_ms("yolov2") < r.report.jitter_ms("yolov2")

    def test_rr_never_below_one(self, split_result):
        for rec in split_result.report.records:
            assert rec.response_ratio >= 1.0 - 1e-9

    def test_custom_split_plans_respected(self):
        plans = {"vgg19": (34.0, 34.0, 5.0)}
        r = simulate("split", SMALL, split_plans=plans)
        assert r.split_plans == plans

    def test_elastic_config_threaded_through(self):
        r = simulate(
            "split",
            HEAVY,
            elastic=ElasticSplitConfig(max_queue_depth=1),
        )
        # With splitting always suspended, every plan is whole-model: the
        # engine trace would show 150 blocks; cheaper check: results exist.
        assert r.report.n_requests == 150

    def test_seed_changes_workload(self):
        a = simulate("split", SMALL, seed=0)
        b = simulate("split", SMALL, seed=1)
        arr_a = [r.arrival_ms for r in a.report.records]
        arr_b = [r.arrival_ms for r in b.report.records]
        assert arr_a != arr_b

    def test_deterministic_given_seed(self):
        a = simulate("prema", SMALL, seed=7)
        b = simulate("prema", SMALL, seed=7)
        ra = [(r.arrival_ms, r.finish_ms) for r in a.report.records]
        rb = [(r.arrival_ms, r.finish_ms) for r in b.report.records]
        assert ra == rb
