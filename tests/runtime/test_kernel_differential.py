"""Differential golden-trace suite: kernel engines vs frozen legacy loops.

``_legacy_engines.py`` holds verbatim copies of the pre-kernel
``SequentialEngine`` (fast path, robust fork, streaming) and
``MultiProcessorEngine`` loops. The kernel refactor's contract is that
``robustness=None`` and robust runs alike perform the *same float
operations in the same order* as those loops, so this suite demands
exact equality — not approx — on:

* block-level traces (canonicalised by arrival identity) for the six
  Table-2 scenarios, fault-free and under the chaos config;
* finish times and terminal-bucket membership;
* scheduler counters (context switches, preemptions, retries, stalls);
* QoS violation curves (float-identical, ``np.array_equal``);
* streaming-sink outputs (the 100k pin runs when ``SPLIT_LARGE_N`` is
  set; a smaller stream is the default so CI stays fast);
* multi-engine placements and per-processor traces for all four routers.

If any of these ever needs "approximately equal", the kernel has changed
behaviour and the change must be justified, not absorbed.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.robustness.config import RobustnessConfig
from repro.robustness.faults import FaultPlan
from repro.robustness.retry import RetryPolicy
from repro.runtime.engine import SequentialEngine
from repro.runtime.metrics import (
    DEFAULT_ALPHA_GRID,
    QoSReport,
    StreamingQoS,
    collect_records,
    robustness_totals,
)
from repro.runtime.multi import ROUTERS, MultiProcessorEngine
from repro.runtime.simulator import (
    _profiles_for,
    _request_classes,
    default_split_plans,
)
from repro.runtime.workload import (
    SCENARIOS,
    Scenario,
    WorkloadGenerator,
    build_task_specs,
    materialize_requests,
    materialize_stream,
)
from repro.scheduling.policies import SplitScheduler
from repro.zoo.registry import EVALUATED_MODELS

from tests.runtime._legacy_engines import (
    LEGACY_ROUTERS,
    LegacyMultiProcessorEngine,
    LegacySequentialEngine,
)

CHAOS = RobustnessConfig(
    faults=FaultPlan(seed=11, fail_rate=0.10, stall_rate=0.05),
    retry=RetryPolicy(max_retries=2, backoff_base_ms=2.0),
    timeout_rr=40.0,
)

_SPECS = None
_ITEMS: dict[str, list] = {}


def split_specs():
    global _SPECS
    if _SPECS is None:
        profiles = _profiles_for(EVALUATED_MODELS, "jetson-nano")
        classes = _request_classes(EVALUATED_MODELS)
        plans = default_split_plans(EVALUATED_MODELS, "jetson-nano")
        _SPECS = build_task_specs(
            profiles,
            split_plans=plans,
            plan_kind="split",
            request_classes=classes,
        )
    return _SPECS


def table2_arrivals(scenario: Scenario, seed: int = 0):
    """Fresh Request objects for one engine run (engines mutate them)."""
    if scenario.name not in _ITEMS:
        _ITEMS[scenario.name] = WorkloadGenerator(
            EVALUATED_MODELS, seed=seed
        ).generate(scenario)
    return materialize_requests(_ITEMS[scenario.name], split_specs())


def identity(arrivals):
    """request_id -> arrival index: the run-invariant request identity
    (raw ids come from a process-global counter)."""
    return {req.request_id: i for i, (_, req) in enumerate(arrivals)}


def canon_trace(trace, ids):
    return [
        (
            ids[e.request_id],
            e.task_type,
            e.block_index,
            e.start_ms,
            e.end_ms,
            e.failed,
        )
        for e in trace.entries
    ]


def bucket_sig(requests, ids):
    return sorted(
        (ids[r.request_id], r.finish_ms, r.retries, r.preemptions)
        for r in requests
    )


def curve(result) -> np.ndarray:
    return QoSReport(collect_records(result)).violation_curve(
        np.asarray(DEFAULT_ALPHA_GRID)
    )


class TestSequentialFaultFree:
    @pytest.mark.parametrize("scenario", SCENARIOS, ids=lambda s: s.name)
    def test_table2_traces_and_curves_identical(self, scenario):
        old_arr = table2_arrivals(scenario)
        new_arr = table2_arrivals(scenario)
        old = LegacySequentialEngine(SplitScheduler(), keep_trace=True).run(
            old_arr
        )
        new = SequentialEngine(SplitScheduler(), keep_trace=True).run(new_arr)
        assert canon_trace(new.trace, identity(new_arr)) == canon_trace(
            old.trace, identity(old_arr)
        )
        assert bucket_sig(new.completed, identity(new_arr)) == bucket_sig(
            old.completed, identity(old_arr)
        )
        assert len(new.dropped) == len(old.dropped)
        assert new.context_switches == old.context_switches
        assert new.preemptions == old.preemptions
        assert (new.n_completed, new.n_dropped) == (
            old.n_completed,
            old.n_dropped,
        )
        assert np.array_equal(curve(new), curve(old))


class TestSequentialChaos:
    @pytest.mark.parametrize("scenario", SCENARIOS, ids=lambda s: s.name)
    def test_table2_robust_runs_identical(self, scenario):
        old_arr = table2_arrivals(scenario)
        new_arr = table2_arrivals(scenario)
        old = LegacySequentialEngine(
            SplitScheduler(), keep_trace=True, robustness=CHAOS
        ).run(old_arr)
        new = SequentialEngine(
            SplitScheduler(), keep_trace=True, robustness=CHAOS
        ).run(new_arr)
        assert canon_trace(new.trace, identity(new_arr)) == canon_trace(
            old.trace, identity(old_arr)
        )
        assert robustness_totals(new) == robustness_totals(old)
        old_ids, new_ids = identity(old_arr), identity(new_arr)
        for bucket in ("completed", "failed", "timed_out", "shed", "dropped"):
            assert bucket_sig(getattr(new, bucket), new_ids) == bucket_sig(
                getattr(old, bucket), old_ids
            ), bucket
        assert np.array_equal(curve(new), curve(old))


class TestStreamingPin:
    def _stream(self, n):
        scenario = Scenario("diff-stream", 120.0, "high", n_requests=n)
        gen = WorkloadGenerator(EVALUATED_MODELS, seed=7)
        return materialize_stream(gen.iter_arrivals(scenario), split_specs())

    def test_streaming_sink_identical(self):
        # The 100k pin of the scaling PR; CI default keeps the suite fast.
        n = 100_000 if os.environ.get("SPLIT_LARGE_N") else 3_000
        old_qos, new_qos = StreamingQoS(), StreamingQoS()
        old = LegacySequentialEngine(SplitScheduler()).run_stream(
            self._stream(n), old_qos.observe
        )
        new = SequentialEngine(SplitScheduler()).run_stream(
            self._stream(n), new_qos.observe
        )
        assert np.array_equal(
            new_qos.violation_curve(), old_qos.violation_curve()
        )
        assert new_qos.totals() == old_qos.totals()
        assert (new.n_completed, new.n_dropped) == (
            old.n_completed,
            old.n_dropped,
        )
        assert new.context_switches == old.context_switches
        assert new.preemptions == old.preemptions


class TestMultiRouters:
    @pytest.mark.parametrize("router", sorted(ROUTERS))
    def test_placements_and_traces_identical(self, router):
        scenario = Scenario("diff-multi", 90.0, "high", n_requests=400)
        old_arr = table2_arrivals(scenario, seed=3)
        new_arr = table2_arrivals(scenario, seed=3)
        # The legacy engine is frozen pre-heterogeneity; without profiles
        # least_normalized_backlog adds the same constant to every
        # processor's quote, so it must reproduce least_backlog exactly.
        legacy_name = router if router in LEGACY_ROUTERS else "least_backlog"
        old = LegacyMultiProcessorEngine(
            [SplitScheduler(), SplitScheduler(), SplitScheduler()],
            router=LEGACY_ROUTERS[legacy_name],
            keep_trace=True,
        ).run(old_arr)
        new = MultiProcessorEngine(
            [SplitScheduler(), SplitScheduler(), SplitScheduler()],
            router=router,
            keep_trace=True,
        ).run(new_arr)
        assert new.placements == old.placements
        old_ids, new_ids = identity(old_arr), identity(new_arr)
        assert set(new.traces) == set(old.traces)
        for idx in new.traces:
            assert canon_trace(new.traces[idx], new_ids) == canon_trace(
                old.traces[idx], old_ids
            ), f"processor {idx}"
        assert bucket_sig(new.completed, new_ids) == bucket_sig(
            old.completed, old_ids
        )
        assert (
            new.engine_result.context_switches
            == old.engine_result.context_switches
        )
        assert new.engine_result.preemptions == old.engine_result.preemptions
