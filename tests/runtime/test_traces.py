"""Bursty workloads and trace replay."""

import pytest

from repro.errors import SimulationError
from repro.runtime.traces import (
    BurstConfig,
    BurstyWorkloadGenerator,
    burstiness_index,
    load_trace,
    save_trace,
)
from repro.runtime.workload import WorkloadItem


@pytest.fixture
def config():
    return BurstConfig(
        calm_models=("vgg19",),
        burst_models=("yolov2", "googlenet"),
        calm_gap_ms=150.0,
        burst_gap_ms=20.0,
    )


class TestBursty:
    def test_deterministic(self, config):
        a = BurstyWorkloadGenerator(config, seed=1).generate(200)
        b = BurstyWorkloadGenerator(config, seed=1).generate(200)
        assert a == b

    def test_sorted_and_counted(self, config):
        items = BurstyWorkloadGenerator(config, seed=0).generate(300)
        assert len(items) == 300
        times = [i.arrival_ms for i in items]
        assert times == sorted(times)

    def test_burstier_than_poisson(self, config):
        items = BurstyWorkloadGenerator(config, seed=0).generate(2000)
        assert burstiness_index(items) > 1.2

    def test_burst_models_appear(self, config):
        items = BurstyWorkloadGenerator(config, seed=0).generate(500)
        names = {i.model_name for i in items}
        assert "yolov2" in names and "vgg19" in names

    def test_invalid_config(self):
        with pytest.raises(SimulationError):
            BurstConfig(calm_models=(), burst_models=("a",))
        with pytest.raises(SimulationError):
            BurstConfig(
                calm_models=("a",), burst_models=("b",), burst_gap_ms=0.0
            )

    def test_invalid_count(self, config):
        with pytest.raises(SimulationError):
            BurstyWorkloadGenerator(config).generate(0)


class TestTraceIO:
    def test_roundtrip(self, tmp_path, config):
        items = BurstyWorkloadGenerator(config, seed=0).generate(50)
        path = save_trace(items, tmp_path / "w.csv")
        loaded = load_trace(path)
        assert len(loaded) == 50
        for a, b in zip(items, loaded):
            assert a.model_name == b.model_name
            assert a.arrival_ms == pytest.approx(b.arrival_ms, abs=1e-5)

    def test_missing_file(self, tmp_path):
        with pytest.raises(SimulationError, match="cannot read"):
            load_trace(tmp_path / "absent.csv")

    def test_bad_header(self, tmp_path):
        p = tmp_path / "bad.csv"
        p.write_text("time,name\n1.0,m\n")
        with pytest.raises(SimulationError, match="header"):
            load_trace(p)

    def test_unsorted_rejected(self, tmp_path):
        p = tmp_path / "bad.csv"
        p.write_text("arrival_ms,model\n5.0,a\n1.0,b\n")
        with pytest.raises(SimulationError, match="not sorted"):
            load_trace(p)

    def test_negative_time_rejected(self, tmp_path):
        p = tmp_path / "bad.csv"
        p.write_text("arrival_ms,model\n-1.0,a\n")
        with pytest.raises(SimulationError, match="negative"):
            load_trace(p)

    def test_missing_model_rejected(self, tmp_path):
        p = tmp_path / "bad.csv"
        p.write_text("arrival_ms,model\n1.0,\n")
        with pytest.raises(SimulationError, match="missing model"):
            load_trace(p)

    def test_empty_trace_rejected(self, tmp_path):
        p = tmp_path / "bad.csv"
        p.write_text("arrival_ms,model\n")
        with pytest.raises(SimulationError, match="empty"):
            load_trace(p)


class TestBurstiness:
    def test_regular_arrivals_low_index(self):
        items = [WorkloadItem(float(i * 10), "m") for i in range(100)]
        assert burstiness_index(items) == pytest.approx(0.0, abs=1e-9)

    def test_too_few(self):
        with pytest.raises(SimulationError):
            burstiness_index([WorkloadItem(0.0, "m"), WorkloadItem(1.0, "m")])
