"""Workload generation: Table 2 scenarios, PREMA chunks, task catalogues."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.runtime.workload import (
    SCENARIOS,
    Scenario,
    WorkloadGenerator,
    build_task_specs,
    materialize_requests,
    prema_chunk_plan,
    scenario_by_name,
)
from repro.types import RequestClass

from tests.conftest import make_profile


class TestScenarios:
    def test_table2_values(self):
        assert [s.lambda_ms for s in SCENARIOS] == [160, 150, 140, 130, 120, 110]
        assert all(s.n_requests == 1000 for s in SCENARIOS)
        assert SCENARIOS[0].load == "low"
        assert SCENARIOS[5].load == "high"

    def test_lookup(self):
        assert scenario_by_name("scenario3").lambda_ms == 140
        with pytest.raises(SimulationError):
            scenario_by_name("scenario99")

    def test_invalid_scenario(self):
        with pytest.raises(SimulationError):
            Scenario("bad", -1.0, "low")


class TestGenerator:
    def test_deterministic(self):
        g = WorkloadGenerator(("a", "b"), seed=3)
        x = g.generate(SCENARIOS[0])
        y = g.generate(SCENARIOS[0])
        assert [(i.arrival_ms, i.model_name) for i in x] == [
            (i.arrival_ms, i.model_name) for i in y
        ]

    def test_seed_changes_schedule(self):
        a = WorkloadGenerator(("a",), seed=1).generate(SCENARIOS[0])
        b = WorkloadGenerator(("a",), seed=2).generate(SCENARIOS[0])
        assert a != b

    def test_sorted_arrivals_and_count(self):
        items = WorkloadGenerator(("a", "b", "c"), seed=0).generate(SCENARIOS[1])
        times = [i.arrival_ms for i in items]
        assert times == sorted(times)
        assert len(items) == 999  # 1000 // 3 per model * 3, truncated

    def test_per_model_interarrival_mean(self):
        """Each model is its own Poisson stream with mean lambda."""
        scen = Scenario("test", 100.0, "low", n_requests=4000)
        items = WorkloadGenerator(("a", "b"), seed=0).generate(scen)
        for model in ("a", "b"):
            ts = np.array([i.arrival_ms for i in items if i.model_name == model])
            gaps = np.diff(np.concatenate([[0.0], ts]))
            assert gaps.mean() == pytest.approx(100.0, rel=0.15)

    def test_empty_models_rejected(self):
        with pytest.raises(SimulationError):
            WorkloadGenerator((), seed=0)


class TestPremaChunks:
    def test_chunks_cover_total(self):
        p = make_profile(np.linspace(1, 3, 16))
        chunks = prema_chunk_plan(p, 4)
        assert len(chunks) == 4
        assert sum(chunks) == pytest.approx(p.total_ms)

    def test_chunks_equal_op_count_not_time(self):
        # Front-loaded profile: equal-op chunks are uneven in time.
        p = make_profile([10.0] * 4 + [1.0] * 12)
        chunks = prema_chunk_plan(p, 4)
        assert chunks[0] == pytest.approx(40.0)
        assert chunks[-1] == pytest.approx(4.0)

    def test_more_chunks_than_ops_clamped(self):
        p = make_profile([1.0, 2.0])
        chunks = prema_chunk_plan(p, 10)
        assert sum(chunks) == pytest.approx(3.0)


class TestTaskSpecs:
    def make_profiles(self):
        return {
            "short": make_profile([1.0] * 10, name="short"),
            "long": make_profile([2.0] * 20, name="long"),
        }

    def test_vanilla_specs(self):
        specs = build_task_specs(self.make_profiles(), plan_kind="vanilla")
        assert specs["short"].blocks_ms == (10.0,)
        assert specs["long"].blocks_ms == (40.0,)

    def test_split_specs_use_plans(self):
        specs = build_task_specs(
            self.make_profiles(),
            split_plans={"long": (20.0, 21.0)},
            plan_kind="split",
        )
        assert specs["long"].blocks_ms == (20.0, 21.0)
        assert specs["short"].blocks_ms == (10.0,)  # absent from plans

    def test_prema_specs_chunked(self):
        specs = build_task_specs(self.make_profiles(), plan_kind="prema")
        assert len(specs["long"].blocks_ms) == 4

    def test_request_classes_propagated(self):
        specs = build_task_specs(
            self.make_profiles(),
            plan_kind="vanilla",
            request_classes={"long": RequestClass.LONG},
        )
        assert specs["long"].request_class is RequestClass.LONG
        assert specs["short"].request_class is RequestClass.SHORT

    def test_unknown_plan_kind(self):
        with pytest.raises(SimulationError):
            build_task_specs(self.make_profiles(), plan_kind="bogus")

    def test_materialize_requests(self):
        specs = build_task_specs(self.make_profiles(), plan_kind="vanilla")
        items = WorkloadGenerator(("short", "long"), seed=0).generate(
            Scenario("t", 50.0, "low", n_requests=10)
        )
        arr = materialize_requests(items, specs)
        assert len(arr) == len(items)
        assert all(t == r.arrival_ms for t, r in arr)

    def test_materialize_unknown_model(self):
        items = WorkloadGenerator(("ghost",), seed=0).generate(
            Scenario("t", 50.0, "low", n_requests=2)
        )
        with pytest.raises(SimulationError, match="ghost"):
            materialize_requests(items, {})
