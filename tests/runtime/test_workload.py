"""Workload generation: Table 2 scenarios, PREMA chunks, task catalogues."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.runtime.workload import (
    SCENARIOS,
    Scenario,
    WorkloadGenerator,
    build_task_specs,
    materialize_requests,
    materialize_stream,
    prema_chunk_plan,
    scenario_by_name,
)
from repro.types import RequestClass

from tests.conftest import make_profile


class TestScenarios:
    def test_table2_values(self):
        assert [s.lambda_ms for s in SCENARIOS] == [160, 150, 140, 130, 120, 110]
        assert all(s.n_requests == 1000 for s in SCENARIOS)
        assert SCENARIOS[0].load == "low"
        assert SCENARIOS[5].load == "high"

    def test_lookup(self):
        assert scenario_by_name("scenario3").lambda_ms == 140
        with pytest.raises(SimulationError):
            scenario_by_name("scenario99")

    def test_invalid_scenario(self):
        with pytest.raises(SimulationError):
            Scenario("bad", -1.0, "low")


class TestGenerator:
    def test_deterministic(self):
        g = WorkloadGenerator(("a", "b"), seed=3)
        x = g.generate(SCENARIOS[0])
        y = g.generate(SCENARIOS[0])
        assert [(i.arrival_ms, i.model_name) for i in x] == [
            (i.arrival_ms, i.model_name) for i in y
        ]

    def test_seed_changes_schedule(self):
        a = WorkloadGenerator(("a",), seed=1).generate(SCENARIOS[0])
        b = WorkloadGenerator(("a",), seed=2).generate(SCENARIOS[0])
        assert a != b

    def test_sorted_arrivals_and_count(self):
        items = WorkloadGenerator(("a", "b", "c"), seed=0).generate(SCENARIOS[1])
        times = [i.arrival_ms for i in items]
        assert times == sorted(times)
        # Exactly n_requests even when the mix size does not divide it:
        # the first n % m models contribute one extra request (the old
        # floor-division allocation silently produced 999 here).
        assert len(items) == 1000
        per_model = {m: 0 for m in ("a", "b", "c")}
        for item in items:
            per_model[item.model_name] += 1
        assert per_model == {"a": 334, "b": 333, "c": 333}

    def test_per_model_interarrival_mean(self):
        """Each model is its own Poisson stream with mean lambda."""
        scen = Scenario("test", 100.0, "low", n_requests=4000)
        items = WorkloadGenerator(("a", "b"), seed=0).generate(scen)
        for model in ("a", "b"):
            ts = np.array([i.arrival_ms for i in items if i.model_name == model])
            gaps = np.diff(np.concatenate([[0.0], ts]))
            assert gaps.mean() == pytest.approx(100.0, rel=0.15)

    def test_empty_models_rejected(self):
        with pytest.raises(SimulationError):
            WorkloadGenerator((), seed=0)


class TestChunkedArrivals:
    """iter_arrivals must reproduce generate() exactly: same per-model
    Poisson draws (chunked RNG calls continue the PCG64 stream
    sample-for-sample), same cumulative sums (each chunk's cumsum is
    seeded with the previous chunk's last arrival), same merge order."""

    def _pairs(self, items):
        return [(i.arrival_ms, i.model_name) for i in items]

    @pytest.mark.parametrize("chunk", [1, 7, 97, 8192])
    def test_identical_to_generate_any_chunk_size(self, chunk):
        gen = WorkloadGenerator(("a", "b", "c"), seed=11)
        scen = Scenario("t", 120.0, "high", n_requests=1000)
        batch = self._pairs(gen.generate(scen))
        streamed = list(gen.iter_arrivals(scen, chunk_size=chunk))
        assert streamed == batch

    @pytest.mark.parametrize("scenario", SCENARIOS[:2] + SCENARIOS[-1:],
                             ids=lambda s: s.name)
    def test_identical_on_table2_scenarios(self, scenario):
        models = ("yolov2", "googlenet", "resnet50", "vgg19", "gpt2")
        gen = WorkloadGenerator(models, seed=0)
        assert list(gen.iter_arrivals(scenario)) == self._pairs(
            gen.generate(scenario)
        )

    def test_fewer_requests_than_models(self):
        gen = WorkloadGenerator(("a", "b", "c"), seed=2)
        scen = Scenario("tiny", 50.0, "low", n_requests=2)
        streamed = list(gen.iter_arrivals(scen))
        assert streamed == self._pairs(gen.generate(scen))
        assert len(streamed) == 2

    def test_lazy_no_full_materialization(self):
        """Pulling one arrival must not realise the whole schedule."""
        gen = WorkloadGenerator(("a",), seed=0)
        scen = Scenario("big", 10.0, "high", n_requests=10**8)
        it = gen.iter_arrivals(scen, chunk_size=16)
        t, name = next(it)
        assert name == "a" and t > 0.0

    def test_materialize_stream_matches_requests(self):
        specs = build_task_specs(
            {
                "short": make_profile([1.0] * 10, name="short"),
                "long": make_profile([2.0] * 20, name="long"),
            },
            plan_kind="vanilla",
        )
        gen = WorkloadGenerator(("short", "long"), seed=0)
        scen = Scenario("t", 50.0, "low", n_requests=20)
        batch = materialize_requests(gen.generate(scen), specs)
        streamed = list(materialize_stream(gen.iter_arrivals(scen), specs))
        assert len(streamed) == len(batch)
        for (tb, rb), (ts, rs) in zip(batch, streamed):
            assert tb == ts
            assert rb.task is rs.task
            assert rb.arrival_ms == rs.arrival_ms

    def test_materialize_stream_unknown_model(self):
        gen = WorkloadGenerator(("ghost",), seed=0)
        scen = Scenario("t", 50.0, "low", n_requests=2)
        with pytest.raises(SimulationError, match="ghost"):
            list(materialize_stream(gen.iter_arrivals(scen), {}))


class TestPremaChunks:
    def test_chunks_cover_total(self):
        p = make_profile(np.linspace(1, 3, 16))
        chunks = prema_chunk_plan(p, 4)
        assert len(chunks) == 4
        assert sum(chunks) == pytest.approx(p.total_ms)

    def test_chunks_equal_op_count_not_time(self):
        # Front-loaded profile: equal-op chunks are uneven in time.
        p = make_profile([10.0] * 4 + [1.0] * 12)
        chunks = prema_chunk_plan(p, 4)
        assert chunks[0] == pytest.approx(40.0)
        assert chunks[-1] == pytest.approx(4.0)

    def test_more_chunks_than_ops_clamped(self):
        p = make_profile([1.0, 2.0])
        chunks = prema_chunk_plan(p, 10)
        assert sum(chunks) == pytest.approx(3.0)


class TestTaskSpecs:
    def make_profiles(self):
        return {
            "short": make_profile([1.0] * 10, name="short"),
            "long": make_profile([2.0] * 20, name="long"),
        }

    def test_vanilla_specs(self):
        specs = build_task_specs(self.make_profiles(), plan_kind="vanilla")
        assert specs["short"].blocks_ms == (10.0,)
        assert specs["long"].blocks_ms == (40.0,)

    def test_split_specs_use_plans(self):
        specs = build_task_specs(
            self.make_profiles(),
            split_plans={"long": (20.0, 21.0)},
            plan_kind="split",
        )
        assert specs["long"].blocks_ms == (20.0, 21.0)
        assert specs["short"].blocks_ms == (10.0,)  # absent from plans

    def test_prema_specs_chunked(self):
        specs = build_task_specs(self.make_profiles(), plan_kind="prema")
        assert len(specs["long"].blocks_ms) == 4

    def test_request_classes_propagated(self):
        specs = build_task_specs(
            self.make_profiles(),
            plan_kind="vanilla",
            request_classes={"long": RequestClass.LONG},
        )
        assert specs["long"].request_class is RequestClass.LONG
        assert specs["short"].request_class is RequestClass.SHORT

    def test_unknown_plan_kind(self):
        with pytest.raises(SimulationError):
            build_task_specs(self.make_profiles(), plan_kind="bogus")

    def test_materialize_requests(self):
        specs = build_task_specs(self.make_profiles(), plan_kind="vanilla")
        items = WorkloadGenerator(("short", "long"), seed=0).generate(
            Scenario("t", 50.0, "low", n_requests=10)
        )
        arr = materialize_requests(items, specs)
        assert len(arr) == len(items)
        assert all(t == r.arrival_ms for t, r in arr)

    def test_materialize_unknown_model(self):
        items = WorkloadGenerator(("ghost",), seed=0).generate(
            Scenario("t", 50.0, "low", n_requests=2)
        )
        with pytest.raises(SimulationError, match="ghost"):
            materialize_requests(items, {})
