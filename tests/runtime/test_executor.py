"""ConcurrentEngine (RT-A): window-limited processor sharing."""

import dataclasses

import pytest

from repro.hardware.contention import ContentionModel
from repro.hardware.presets import jetson_nano
from repro.runtime.executor import ConcurrentEngine
from repro.scheduling.request import Request, TaskSpec


def make_engine(max_streams=4, overlap=0.12, aligned=True):
    dev = dataclasses.replace(
        jetson_nano(), max_streams=max_streams, rta_overlap_gain=overlap
    )
    return ConcurrentEngine(ContentionModel(dev), aligned=aligned)


def arrivals(*items):
    out = []
    for t, name, ext in items:
        s = TaskSpec(name=name, ext_ms=ext, blocks_ms=(ext,))
        out.append((t, Request(task=s, arrival_ms=t)))
    return out


def test_single_request_runs_at_full_speed():
    res = make_engine().run(arrivals((0.0, "a", 10.0)))
    assert res.completed[0].finish_ms == pytest.approx(10.0)


def test_two_corunning_share_with_gain():
    eng = make_engine(overlap=0.12)
    res = eng.run(arrivals((0.0, "a", 10.0), (0.0, "b", 10.0)))
    finishes = sorted(r.finish_ms for r in res.completed)
    # eta(2) = 1.06, both share: each progresses at 0.53/ms.
    assert finishes[0] == pytest.approx(10.0 / 0.53, rel=1e-6)
    assert finishes[1] == pytest.approx(finishes[0])


def test_short_stretches_toward_long():
    """The paper's RT-A pathology: a co-running short request's latency
    approaches the long one's."""
    eng = make_engine(overlap=0.0)
    res = eng.run(arrivals((0.0, "long", 60.0), (0.0, "short", 10.0)))
    by_name = {r.task_type: r for r in res.completed}
    # Short shares 2-way until done: 20 ms instead of 10.
    assert by_name["short"].finish_ms == pytest.approx(20.0)
    assert by_name["long"].finish_ms == pytest.approx(70.0)


def test_window_limits_concurrency():
    eng = make_engine(max_streams=1, overlap=0.0)
    res = eng.run(arrivals((0.0, "a", 10.0), (0.0, "b", 10.0)))
    finishes = sorted(r.finish_ms for r in res.completed)
    # With a 1-wide window it degenerates to FIFO.
    assert finishes == [pytest.approx(10.0), pytest.approx(20.0)]


def test_backlog_admitted_on_completion():
    eng = make_engine(max_streams=2, overlap=0.0)
    res = eng.run(
        arrivals((0.0, "a", 10.0), (0.0, "b", 10.0), (0.0, "c", 10.0))
    )
    assert len(res.completed) == 3
    c = next(r for r in res.completed if r.task_type == "c")
    # a and b share (finish at 20); c runs alone after: 30.
    assert c.finish_ms == pytest.approx(30.0)
    assert c.first_start_ms == pytest.approx(20.0)


def test_late_arrival_joins_window():
    eng = make_engine(overlap=0.0)
    res = eng.run(arrivals((0.0, "a", 10.0), (5.0, "b", 10.0)))
    by_name = {r.task_type: r for r in res.completed}
    # a alone for 5ms (5 work left), then shares: each gets 0.5/ms.
    assert by_name["a"].finish_ms == pytest.approx(15.0)
    # b: shares until a leaves (5 done at t=15), then alone 5 more: t=20.
    assert by_name["b"].finish_ms == pytest.approx(20.0)


def test_naive_mode_slower_than_aligned():
    workload = [(0.0, "a", 30.0), (0.0, "b", 30.0), (0.0, "c", 30.0)]
    aligned = make_engine(aligned=True).run(arrivals(*workload))
    naive = make_engine(aligned=False).run(arrivals(*workload))
    assert max(r.finish_ms for r in naive.completed) > max(
        r.finish_ms for r in aligned.completed
    )


def test_conservation():
    items = [(float(i), f"t{i % 3}", 5.0 + i) for i in range(20)]
    res = make_engine().run(arrivals(*items))
    assert len(res.completed) == 20
    for r in res.completed:
        assert r.finish_ms > r.arrival_ms


class TestAlignmentBarrier:
    def test_joiner_waits_for_mentor(self):
        eng = make_engine(overlap=0.0)
        eng.alignment_barrier = True
        res = eng.run(arrivals((0.0, "B", 60.0), (10.0, "A", 10.0)))
        by_name = {r.task_type: r for r in res.completed}
        # A's work finishes early but it returns only when B completes.
        assert by_name["A"].finish_ms == pytest.approx(by_name["B"].finish_ms)

    def test_first_request_unaffected(self):
        eng = make_engine(overlap=0.0)
        eng.alignment_barrier = True
        res = eng.run(arrivals((0.0, "B", 60.0), (10.0, "A", 10.0)))
        b = next(r for r in res.completed if r.task_type == "B")
        # B shares 2-way while A's 10ms of work drains (20ms wall), then
        # runs alone: 10 + 20 + 40 = 70.
        assert b.finish_ms == pytest.approx(70.0)

    def test_simultaneous_start_no_barrier_between(self):
        eng = make_engine(overlap=0.0)
        eng.alignment_barrier = True
        res = eng.run(arrivals((0.0, "A", 10.0), (0.0, "B", 60.0)))
        a = next(r for r in res.completed if r.task_type == "A")
        # A and B admitted together: A's mentors include B... A must wait.
        b = next(r for r in res.completed if r.task_type == "B")
        assert a.finish_ms <= b.finish_ms + 1e-9

    def test_conservation_with_barrier(self):
        eng = make_engine(max_streams=3, overlap=0.1)
        eng.alignment_barrier = True
        items = [(float(i * 7), f"m{i % 4}", 10.0 + (i % 3) * 20.0) for i in range(40)]
        res = eng.run(arrivals(*items))
        assert len(res.completed) == 40
        for r in res.completed:
            assert r.finish_ms > r.arrival_ms
