"""Heterogeneous multi-processor serving via per-processor NodeProfiles.

The kernel rebinds each routed request onto the owning node's task
catalogue, the normalized-backlog router reads node-local execution
times, the capability filter keeps models off nodes that cannot serve
them, and a node-level preemption overhead overrides the policy
constant — all without perturbing the homogeneous (no-profile) path.
"""

import pytest

from repro.errors import SimulationError
from repro.hardware import NodeProfile
from repro.hardware.presets import desktop_gpu, jetson_nano
from repro.runtime.multi import (
    MultiProcessorEngine,
    capability_filter,
    least_backlog,
    least_normalized_backlog,
)
from repro.scheduling.policies import FIFOScheduler, SplitScheduler
from repro.scheduling.request import Request, TaskSpec


def spec(name="m", ext=10.0, blocks=None, alpha=4.0):
    return TaskSpec(name=name, ext_ms=ext, blocks_ms=blocks or (ext,), alpha=alpha)


def node(name, specs, device=None, **kw):
    return NodeProfile(
        name=name,
        device=device or jetson_nano(),
        specs={s.name: s for s in specs},
        **kw,
    )


def arrivals(*items):
    return [
        (t, Request(task=spc, arrival_ms=t)) for t, spc in items
    ]


class TestTaskRebinding:
    def test_request_served_under_node_local_spec(self):
        """The same logical model runs 4x faster on the fast node: the
        kernel swaps the routed request's task for the node's own spec."""
        slow = node("slow", [spec("m", ext=40.0)])
        fast = node("fast", [spec("m", ext=10.0)], device=desktop_gpu())
        eng = MultiProcessorEngine(
            [FIFOScheduler(), FIFOScheduler()],
            router=lambda ps, r: 1,  # everything on the fast node
            profiles=[slow, fast],
        )
        res = eng.run(arrivals((0.0, spec("m", ext=40.0))))
        (req,) = res.completed
        assert req.task.ext_ms == 10.0
        assert req.finish_ms == pytest.approx(10.0)

    def test_unknown_model_passes_through(self):
        """A model absent from the node catalogue keeps its own spec
        (resolve is a lookup with identity fallback, not a gate)."""
        prof = node("n", [spec("other", ext=5.0)])
        eng = MultiProcessorEngine(
            [FIFOScheduler()], profiles=[prof]
        )
        res = eng.run(arrivals((0.0, spec("m", ext=17.0))))
        assert res.completed[0].finish_ms == pytest.approx(17.0)

    def test_none_profiles_identical_to_no_profiles(self):
        """profiles=[None, None] must be byte-identical to the
        homogeneous engine — the hetero path is strictly additive."""
        items = [(float(i) * 7.0, spec(f"m{i % 2}", ext=12.5)) for i in range(40)]
        plain = MultiProcessorEngine(
            [SplitScheduler(), SplitScheduler()], router="least_backlog"
        ).run(arrivals(*items))
        tagged = MultiProcessorEngine(
            [SplitScheduler(), SplitScheduler()],
            router="least_backlog",
            profiles=[None, None],
        ).run(arrivals(*items))
        assert [r.finish_ms for r in plain.completed] == [
            r.finish_ms for r in tagged.completed
        ]
        assert plain.placements == tagged.placements


class TestNormalizedBacklogRouter:
    def test_prefers_node_with_lower_local_ext(self):
        """At equal backlog the fast node's catalogue wins the tie that
        plain least_backlog would give to the lower index."""
        slow = node("slow", [spec("m", ext=80.0)])
        fast = node("fast", [spec("m", ext=14.0)], device=desktop_gpu())
        eng = MultiProcessorEngine(
            [FIFOScheduler(), FIFOScheduler()],
            router="least_normalized_backlog",
            profiles=[slow, fast],
        )
        res = eng.run(arrivals((0.0, spec("m", ext=80.0))))
        assert res.placements == {0: 0, 1: 1}

    def test_degenerates_to_least_backlog_without_profiles(self):
        items = [(float(i) * 6.0, spec(f"m{i % 3}", ext=20.0)) for i in range(60)]
        lb = MultiProcessorEngine(
            [SplitScheduler(), SplitScheduler()], router="least_backlog"
        ).run(arrivals(*items))
        lnb = MultiProcessorEngine(
            [SplitScheduler(), SplitScheduler()],
            router="least_normalized_backlog",
        ).run(arrivals(*items))
        assert lb.placements == lnb.placements
        assert [r.finish_ms for r in lb.completed] == [
            r.finish_ms for r in lnb.completed
        ]

    def test_slow_node_still_used_when_fast_is_saturated(self):
        """Enough simultaneous arrivals overflow the fast node: once its
        projected completion passes the slow node's quote, work spills."""
        slow = node("slow", [spec("m", ext=30.0)])
        fast = node("fast", [spec("m", ext=10.0)], device=desktop_gpu())
        eng = MultiProcessorEngine(
            [FIFOScheduler(), FIFOScheduler()],
            router="least_normalized_backlog",
            profiles=[slow, fast],
        )
        res = eng.run(
            arrivals(*[(0.0, spec("m", ext=30.0)) for _ in range(8)])
        )
        assert res.placements[0] > 0
        assert res.placements[1] > res.placements[0]


class TestCapabilityFilter:
    def test_restricts_to_capable_nodes(self):
        cpu_only = node(
            "tiny", [spec("small", ext=5.0)], supports=frozenset({"small"})
        )
        big = node("big", [spec("small", ext=5.0), spec("large", ext=50.0)])
        eng = MultiProcessorEngine(
            [FIFOScheduler(), FIFOScheduler()],
            router=capability_filter(least_backlog),
            profiles=[cpu_only, big],
        )
        res = eng.run(
            arrivals((0.0, spec("large", ext=50.0)), (1.0, spec("large", ext=50.0)))
        )
        assert res.placements == {0: 0, 1: 2}

    def test_no_capable_node_raises(self):
        mk = lambda i: node(
            f"a{i}", [spec("a", ext=5.0)], supports=frozenset({"a"})
        )
        eng = MultiProcessorEngine(
            [FIFOScheduler(), FIFOScheduler()],
            router=capability_filter(least_backlog),
            profiles=[mk(0), mk(1)],
        )
        with pytest.raises(SimulationError, match="no processor can serve"):
            eng.run(arrivals((0.0, spec("b", ext=5.0))))

    def test_all_eligible_passes_full_list_through(self):
        """With universal nodes the filter is the identity wrapper: the
        base router sees the real indices and counters stay global."""
        calls = []

        def probe(ps, r):
            calls.append(len(ps))
            return least_normalized_backlog(ps, r)

        eng = MultiProcessorEngine(
            [FIFOScheduler(), FIFOScheduler()],
            router=capability_filter(probe),
        )
        eng.run(arrivals((0.0, spec("m")), (1.0, spec("m"))))
        assert calls == [2, 2]


class TestPerNodeOverheads:
    def test_profile_overrides_preemption_overhead(self):
        """A node-level checkpoint cost replaces the policy constant on
        that processor only."""
        cheap = node("cheap", [], preemption_overhead_ms=0.0)
        costly = node("costly", [], preemption_overhead_ms=9.0)
        eng = MultiProcessorEngine(
            [SplitScheduler(), SplitScheduler()],
            profiles=[cheap, costly],
        )
        kernel = eng._kernel()
        assert kernel.procs[0].scheduler.preemption_overhead_ms == 0.0
        assert kernel.procs[1].scheduler.preemption_overhead_ms == 9.0

    def test_profiles_length_validated(self):
        with pytest.raises(SimulationError, match="node profiles"):
            MultiProcessorEngine(
                [FIFOScheduler(), FIFOScheduler()],
                profiles=[node("only", [])],
            )
