"""QoS metrics: violation curves and jitter."""

import math

import numpy as np
import pytest

from repro.runtime.engine import EngineResult
from repro.runtime.metrics import QoSReport, RequestRecord, collect_records
from repro.scheduling.request import Request, TaskSpec


def record(model="m", arrival=0.0, finish=20.0, ext=10.0, rid=None, preempt=0):
    record.counter = getattr(record, "counter", 0) + 1
    return RequestRecord(
        request_id=rid if rid is not None else record.counter,
        model=model,
        arrival_ms=arrival,
        finish_ms=finish,
        ext_ms=ext,
        preemptions=preempt,
    )


class TestRequestRecord:
    def test_rr(self):
        r = record(finish=30.0, ext=10.0)
        assert r.e2e_ms == 30.0
        assert r.response_ratio == 3.0
        assert r.violates(2.9)
        assert not r.violates(3.0)

    def test_dropped_always_violates(self):
        r = record(finish=None)
        assert r.dropped
        assert r.response_ratio == float("inf")
        assert r.violates(1e9)


class TestQoSReport:
    def make_report(self):
        return QoSReport(
            [
                record(model="a", finish=10.0, ext=10.0),  # RR 1
                record(model="a", finish=30.0, ext=10.0),  # RR 3
                record(model="b", arrival=0.0, finish=50.0, ext=10.0),  # RR 5
                record(model="b", finish=None, ext=10.0),  # dropped
            ]
        )

    def test_violation_rate(self):
        rep = self.make_report()
        assert rep.violation_rate(2.0) == 0.75  # RR 3, 5, inf
        assert rep.violation_rate(4.0) == 0.5
        assert rep.violation_rate(100.0) == 0.25  # only the drop

    def test_violation_curve_monotone(self):
        rep = self.make_report()
        curve = rep.violation_curve([2, 4, 8, 100])
        assert (np.diff(curve) <= 0).all()

    def test_models_and_latencies(self):
        rep = self.make_report()
        assert rep.models() == ("a", "b")
        assert len(rep.latencies_for("a")) == 2
        assert len(rep.latencies_for("b")) == 1  # drop excluded
        assert len(rep.latencies_for()) == 3

    def test_jitter(self):
        rep = self.make_report()
        assert rep.jitter_ms("a") == pytest.approx(10.0)  # std of [10, 30]
        assert rep.jitter_ms("b") == 0.0
        assert math.isnan(rep.jitter_ms("absent"))

    def test_mean_rr(self):
        rep = self.make_report()
        assert rep.mean_response_ratio("a") == pytest.approx(2.0)

    def test_counts(self):
        rep = self.make_report()
        assert rep.n_requests == 4
        assert rep.n_dropped == 1

    def test_empty_report(self):
        rep = QoSReport([])
        assert math.isnan(rep.violation_rate(2.0))
        assert math.isnan(rep.jitter_ms())

    def test_latency_summary_keys(self):
        s = self.make_report().latency_summary("a")
        assert s["min"] == 10.0 and s["max"] == 30.0


class TestCollectRecords:
    def test_freeze_and_sort(self):
        spec = TaskSpec(name="m", ext_ms=10.0, blocks_ms=(10.0,))
        done = Request(task=spec, arrival_ms=5.0)
        done.finish_ms = 20.0
        dropped = Request(task=spec, arrival_ms=1.0)
        result = EngineResult(completed=[done], dropped=[dropped])
        records = collect_records(result)
        assert [r.arrival_ms for r in records] == [1.0, 5.0]
        assert records[0].dropped
        assert not records[1].dropped
        assert records[1].e2e_ms == 15.0
