"""Engine edge cases: ties, zero-length blocks, pathological schedules."""

import pytest

from repro.errors import SimulationError
from repro.runtime.engine import SequentialEngine
from repro.scheduling.policies import FIFOScheduler, SplitScheduler
from repro.scheduling.request import Request, TaskSpec


def spec(name="m", ext=10.0, blocks=None):
    return TaskSpec(name=name, ext_ms=ext, blocks_ms=blocks or (ext,))


def test_simultaneous_arrivals_all_served():
    engine = SequentialEngine(FIFOScheduler(), keep_trace=True)
    arr = [
        (5.0, Request(task=spec(f"t{i}", ext=3.0), arrival_ms=5.0))
        for i in range(10)
    ]
    res = engine.run(arr)
    assert len(res.completed) == 10
    res.trace.verify()
    finishes = sorted(r.finish_ms for r in res.completed)
    assert finishes[-1] == pytest.approx(5.0 + 30.0)


def test_zero_length_block_progresses():
    # A plan containing a zero-duration block must not stall the engine.
    s = TaskSpec(name="z", ext_ms=5.0, blocks_ms=(0.0, 5.0))
    engine = SequentialEngine(SplitScheduler())
    res = engine.run([(0.0, Request(task=s, arrival_ms=0.0))])
    assert res.completed[0].finish_ms == pytest.approx(5.0)


def test_arrival_exactly_at_block_boundary():
    engine = SequentialEngine(SplitScheduler(), keep_trace=True)
    long_req = Request(task=spec("long", 40.0, (20.0, 20.0)), arrival_ms=0.0)
    short_req = Request(task=spec("short", 5.0), arrival_ms=20.0)
    res = engine.run([(0.0, long_req), (20.0, short_req)])
    res.trace.verify()
    by_name = {r.task_type: r for r in res.completed}
    # Arrival at the boundary: the short must run next (it passes the
    # long's second block at the boundary).
    assert by_name["short"].finish_ms == pytest.approx(25.0)


def test_negative_arrival_rejected():
    engine = SequentialEngine(FIFOScheduler())
    with pytest.raises(SimulationError, match="negative"):
        engine.run([(-1.0, Request(task=spec(), arrival_ms=0.0))])


def test_many_tiny_blocks():
    blocks = tuple([0.01] * 500)
    s = TaskSpec(name="tiny", ext_ms=5.0, blocks_ms=blocks)
    engine = SequentialEngine(SplitScheduler())
    res = engine.run([(0.0, Request(task=s, arrival_ms=0.0))])
    assert res.completed[0].finish_ms == pytest.approx(5.0, rel=1e-6)


def test_arrival_long_after_drain():
    engine = SequentialEngine(FIFOScheduler())
    res = engine.run(
        [
            (0.0, Request(task=spec("a", 1.0), arrival_ms=0.0)),
            (1e6, Request(task=spec("b", 1.0), arrival_ms=1e6)),
        ]
    )
    by_name = {r.task_type: r for r in res.completed}
    assert by_name["b"].finish_ms == pytest.approx(1e6 + 1.0)


def test_identical_requests_fifo_order_stable():
    engine = SequentialEngine(SplitScheduler())
    reqs = [Request(task=spec("same", 5.0), arrival_ms=float(i)) for i in range(8)]
    res = engine.run([(r.arrival_ms, r) for r in reqs])
    finish_by_arrival = sorted(
        (r.arrival_ms, r.finish_ms) for r in res.completed
    )
    finishes = [f for _, f in finish_by_arrival]
    assert finishes == sorted(finishes)  # no overtaking within a task
