"""Differential suite for the kernel's fault-free fast lane.

The fast lane (``EventKernel._run_fast``) batches arrival admission,
settlement and allocation; its contract is *byte-identical traces and
float-identical QoS* versus the reference loop. This suite pins that by
running every scenario through both lanes (``fast_lane=None`` auto vs
``fast_lane=False`` forced-reference) and demanding exact equality — the
same discipline as ``test_kernel_differential.py``, which independently
pins the reference loop against the frozen pre-kernel engines (so the
chain legacy == reference == fast is closed).

Also covered: lane selection (when the fast lane must disengage), the
chunked arrival source's bit-identity with the element-wise merge,
``bulk_admit`` vs per-request ``on_arrival``, ``observe_batch`` vs the
scalar sink, and request-pool recycling.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.robustness.config import RobustnessConfig
from repro.robustness.faults import FaultPlan
from repro.runtime.engine import SequentialEngine
from repro.runtime.kernel import EngineResult, EventKernel, Hooks, batch_sink
from repro.runtime.metrics import StreamingQoS
from repro.runtime.workload import (
    SCENARIOS,
    RequestChunkStream,
    Scenario,
    WorkloadGenerator,
    materialize_chunk_stream,
)
from repro.scheduling.policies import SplitScheduler
from repro.scheduling.queue import ListBackedRequestQueue
from repro.scheduling.request import Request, RequestPool
from repro.zoo.registry import EVALUATED_MODELS

from tests.runtime.test_kernel_differential import (
    bucket_sig,
    canon_trace,
    curve,
    identity,
    split_specs,
    table2_arrivals,
)


def chunk_source(n, seed=7, pool=None, chunk_size=None):
    scenario = Scenario("fastlane-stream", 120.0, "high", n_requests=n)
    gen = WorkloadGenerator(EVALUATED_MODELS, seed=seed)
    kwargs = {} if chunk_size is None else {"chunk_size": chunk_size}
    return materialize_chunk_stream(
        gen, scenario, split_specs(), pool=pool, **kwargs
    )


def assert_qos_identical(a: StreamingQoS, b: StreamingQoS) -> None:
    assert a.totals() == b.totals()
    assert np.array_equal(a.violation_counts(), b.violation_counts())
    assert np.array_equal(a.violation_curve(), b.violation_curve())
    assert a.mean_latency_ms() == b.mean_latency_ms()
    assert a.jitter_ms() == b.jitter_ms()
    assert a.mean_response_ratio() == b.mean_response_ratio()
    assert a.models() == b.models()
    for q in (50, 95, 99):
        assert a.latency_percentile(q) == b.latency_percentile(q)
    for model in a.models():
        assert a.mean_latency_ms(model) == b.mean_latency_ms(model), model
        assert a.jitter_ms(model) == b.jitter_ms(model), model
        assert a.mean_response_ratio(model) == b.mean_response_ratio(model)
        assert a.latency_percentile(99, model) == b.latency_percentile(
            99, model
        ), model


class TestBatchDifferential:
    @pytest.mark.parametrize("scenario", SCENARIOS, ids=lambda s: s.name)
    def test_traces_buckets_counters_curves_identical(self, scenario):
        fast_arr = table2_arrivals(scenario)
        slow_arr = table2_arrivals(scenario)
        fast = SequentialEngine(SplitScheduler(), keep_trace=True).run(fast_arr)
        slow = SequentialEngine(
            SplitScheduler(), keep_trace=True, fast_lane=False
        ).run(slow_arr)
        fast_ids, slow_ids = identity(fast_arr), identity(slow_arr)
        assert canon_trace(fast.trace, fast_ids) == canon_trace(
            slow.trace, slow_ids
        )
        assert bucket_sig(fast.completed, fast_ids) == bucket_sig(
            slow.completed, slow_ids
        )
        assert (fast.n_completed, fast.n_dropped) == (
            slow.n_completed,
            slow.n_dropped,
        )
        assert fast.context_switches == slow.context_switches
        assert fast.preemptions == slow.preemptions
        assert np.array_equal(curve(fast), curve(slow))

    @pytest.mark.parametrize("scenario", SCENARIOS[:2], ids=lambda s: s.name)
    def test_list_backend_identical(self, scenario):
        fast_arr = table2_arrivals(scenario)
        slow_arr = table2_arrivals(scenario)
        fast = SequentialEngine(
            SplitScheduler(), keep_trace=True, queue_cls=ListBackedRequestQueue
        ).run(fast_arr)
        slow = SequentialEngine(
            SplitScheduler(),
            keep_trace=True,
            queue_cls=ListBackedRequestQueue,
            fast_lane=False,
        ).run(slow_arr)
        assert canon_trace(fast.trace, identity(fast_arr)) == canon_trace(
            slow.trace, identity(slow_arr)
        )
        assert fast.preemptions == slow.preemptions


class TestStreamingDifferential:
    def _run(self, n, fast_lane, pool=None, chunk_size=None):
        qos = StreamingQoS()
        result = SequentialEngine(SplitScheduler(), fast_lane=fast_lane).run_stream(
            chunk_source(n, pool=pool, chunk_size=chunk_size), qos.observe
        )
        return qos, result

    def test_stream_qos_identical(self):
        n = 20_000
        qf, rf = self._run(n, None, pool=RequestPool())
        qs, rs = self._run(n, False)
        assert_qos_identical(qf, qs)
        assert (rf.n_completed, rf.n_dropped) == (rs.n_completed, rs.n_dropped)
        assert rf.context_switches == rs.context_switches
        assert rf.preemptions == rs.preemptions

    def test_chunk_size_invariance(self):
        qa, _ = self._run(3_000, None, chunk_size=13)
        qb, _ = self._run(3_000, None)
        assert_qos_identical(qa, qb)

    @pytest.mark.skipif(
        not os.environ.get("SPLIT_LARGE_N"),
        reason="set SPLIT_LARGE_N=1 for the million-request differential",
    )
    def test_million_request_stream_identical(self):
        n = 1_000_000
        qf, rf = self._run(n, None, pool=RequestPool())
        qs, rs = self._run(n, False)
        assert_qos_identical(qf, qs)
        assert rf.n_completed == rs.n_completed == n
        assert rf.context_switches == rs.context_switches
        assert rf.preemptions == rs.preemptions


class TestLaneSelection:
    def _kernel_run(self, **kwargs):
        scenario = Scenario("lane", 90.0, "low", n_requests=50)
        arrivals = sorted(table2_arrivals(scenario), key=lambda p: p[0])
        schedulers = kwargs.pop("schedulers", [SplitScheduler()])
        kernel = EventKernel(schedulers, **kwargs)
        result = EngineResult(trace=kernel.procs[0].trace)
        kernel.run(arrivals, batch_sink(result), result)
        return kernel

    def test_default_config_takes_fast_lane(self):
        assert self._kernel_run().lane_used == "fast"

    def test_noop_hooks_instance_stays_fast(self):
        assert self._kernel_run(hooks=Hooks()).lane_used == "fast"

    def test_list_backend_stays_fast(self):
        kernel = self._kernel_run(queue_cls=ListBackedRequestQueue)
        assert kernel.lane_used == "fast"

    def test_forced_off_takes_reference(self):
        assert self._kernel_run(fast_lane=False).lane_used == "reference"

    def test_custom_hooks_take_reference(self):
        class Counting(Hooks):
            def __init__(self):
                self.dispatches = 0

            def on_dispatch(self, request, now_ms, block_ms, proc_index):
                self.dispatches += 1

        hooks = Counting()
        kernel = self._kernel_run(hooks=hooks)
        assert kernel.lane_used == "reference"
        assert hooks.dispatches > 0  # the observer actually fired

    def test_robustness_takes_reference(self):
        cfg = RobustnessConfig(faults=FaultPlan(seed=3, fail_rate=0.0))
        kernel = self._kernel_run(robustness=cfg)
        assert kernel.lane_used == "reference"

    def test_multi_processor_takes_reference(self):
        kernel = self._kernel_run(
            schedulers=[SplitScheduler(), SplitScheduler()]
        )
        assert kernel.lane_used == "reference"


class TestChunkedArrivals:
    def test_chunk_merge_bit_identical_to_element_merge(self):
        scenario = Scenario("merge", 100.0, "high", n_requests=4_000)
        gen_a = WorkloadGenerator(EVALUATED_MODELS, seed=5)
        gen_b = WorkloadGenerator(EVALUATED_MODELS, seed=5)
        element = list(gen_a.iter_arrivals(scenario))
        chunked = []
        for times, idx in gen_b.iter_arrival_chunks(scenario):
            chunked.extend(
                (t, gen_b.models[k]) for t, k in zip(times.tolist(), idx.tolist())
            )
        assert chunked == element  # same floats, same tie order

    def test_chunk_size_does_not_change_the_merge(self):
        scenario = Scenario("merge", 100.0, "high", n_requests=2_000)
        runs = []
        for chunk_size in (13, 256, 8192):
            gen = WorkloadGenerator(EVALUATED_MODELS, seed=5)
            flat = []
            for times, idx in gen.iter_arrival_chunks(scenario, chunk_size):
                flat.extend(zip(times.tolist(), idx.tolist()))
            runs.append(flat)
        assert runs[0] == runs[1] == runs[2]

    def test_invalid_chunks_raise_validated_stream_errors(self):
        spec = next(iter(split_specs().values()))

        def stream_of(arrays):
            return RequestChunkStream(
                iter(arrays), [spec], pool=None
            )

        bad_negative = stream_of(
            [(np.array([-1.0, 2.0]), np.array([0, 0]))]
        )
        with pytest.raises(SimulationError, match="negative arrival time"):
            bad_negative.next_chunk()

        bad_order = stream_of(
            [(np.array([5.0, 3.0]), np.array([0, 0]))]
        )
        with pytest.raises(SimulationError, match="not time-ordered"):
            bad_order.next_chunk()

        bad_across = stream_of(
            [
                (np.array([5.0]), np.array([0])),
                (np.array([4.0]), np.array([0])),
            ]
        )
        bad_across.next_chunk()
        with pytest.raises(SimulationError, match="not time-ordered"):
            bad_across.next_chunk()


class TestBulkAdmit:
    def test_bulk_admit_matches_per_request_on_arrival(self):
        scenario = Scenario("bulk", 80.0, "high", n_requests=300)
        one_arr = sorted(table2_arrivals(scenario), key=lambda p: p[0])
        blk_arr = sorted(table2_arrivals(scenario), key=lambda p: p[0])
        one_ids, blk_ids = identity(one_arr), identity(blk_arr)
        sched_one, sched_blk = SplitScheduler(), SplitScheduler()
        q_one = SequentialEngine(sched_one).queue_cls()
        q_blk = SequentialEngine(sched_blk).queue_cls()
        for t, req in one_arr:
            sched_one.on_arrival(q_one, req, t)
        pairs = blk_arr
        start = 0
        for size in (1, 7, 64, 3, len(pairs)):  # uneven chunk boundaries
            chunk = [req for _, req in pairs[start : start + size]]
            if chunk:
                sched_blk.bulk_admit(q_blk, chunk)
            start += size
        assert [blk_ids[r.request_id] for r in q_blk] == [
            one_ids[r.request_id] for r in q_one
        ]
        assert sched_blk.preempt_inserts == sched_one.preempt_inserts


class TestRequestPool:
    def test_take_resets_state_and_reissues_identity(self):
        spec = next(iter(split_specs().values()))
        pool = RequestPool()
        req = pool.take(spec, 0.0)
        first_id = req.request_id
        req.begin(spec.blocks_ms, 0.0)
        req.finish_ms = 12.5
        req.preemptions = 3
        req.outcome = "served"
        pool.recycle([req])
        assert len(pool) == 1
        again = pool.take(spec, 7.0)
        assert again is req  # recycled object...
        assert again.request_id != first_id  # ...with a fresh identity
        assert again.arrival_ms == 7.0
        assert again.plan_ms is None
        assert again.next_block == 0
        assert again.first_start_ms is None
        assert again.finish_ms is None
        assert again.preemptions == 0
        assert again.retries == 0
        assert again.outcome == "pending"

    def test_pooled_stream_recycles_and_matches_unpooled(self):
        n = 5_000
        pool = RequestPool()
        q_pooled, q_fresh = StreamingQoS(), StreamingQoS()
        SequentialEngine(SplitScheduler()).run_stream(
            chunk_source(n, pool=pool), q_pooled.observe
        )
        SequentialEngine(SplitScheduler()).run_stream(
            chunk_source(n), q_fresh.observe
        )
        assert len(pool) > 0  # terminals actually came back
        assert_qos_identical(q_pooled, q_fresh)


class TestObserveBatch:
    def test_observe_batch_matches_scalar_observe(self):
        n = 4_000
        terminals: list[tuple[Request, str]] = []
        # The reference lane emits per element and retains nothing, so the
        # recorded requests stay valid for replay.
        SequentialEngine(SplitScheduler(), fast_lane=False).run_stream(
            chunk_source(n), lambda req, outcome: terminals.append((req, outcome))
        )
        assert len(terminals) == n
        scalar, batched = StreamingQoS(), StreamingQoS()
        for req, outcome in terminals:
            scalar.observe(req, outcome)
        batched.observe_batch(
            [req for req, _ in terminals], [o for _, o in terminals]
        )
        assert_qos_identical(batched, scalar)

    def test_observe_batch_length_mismatch_raises(self):
        qos = StreamingQoS()
        spec = next(iter(split_specs().values()))
        req = Request(task=spec, arrival_ms=0.0)
        with pytest.raises(SimulationError, match="observe_batch"):
            qos.observe_batch([req], ["served", "served"])
