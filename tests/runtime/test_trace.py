"""ExecutionTrace invariant checking."""

import pytest

from repro.errors import SimulationError
from repro.runtime.trace import ExecutionTrace, TraceEntry


def entry(rid=0, block=0, start=0.0, end=1.0, task="m"):
    return TraceEntry(
        request_id=rid, task_type=task, block_index=block, start_ms=start, end_ms=end
    )


def test_entry_end_before_start_rejected():
    with pytest.raises(SimulationError):
        entry(start=5.0, end=4.0)


def test_verify_passes_serial_trace():
    t = ExecutionTrace()
    t.record(entry(rid=1, block=0, start=0, end=2))
    t.record(entry(rid=2, block=0, start=2, end=5))
    t.record(entry(rid=1, block=1, start=5, end=7))
    t.verify()
    assert t.busy_ms() == 7.0
    assert len(t) == 3


def test_verify_detects_overlap():
    t = ExecutionTrace()
    t.record(entry(rid=1, start=0, end=3))
    t.record(entry(rid=2, start=2, end=4))
    with pytest.raises(SimulationError, match="overlap"):
        t.verify()


def test_verify_detects_block_order_violation():
    t = ExecutionTrace()
    t.record(entry(rid=1, block=1, start=0, end=1))
    with pytest.raises(SimulationError, match="expected 0"):
        t.verify()


def test_for_request_filters():
    t = ExecutionTrace()
    t.record(entry(rid=1, block=0, start=0, end=1))
    t.record(entry(rid=2, block=0, start=1, end=2))
    t.record(entry(rid=1, block=1, start=2, end=3))
    assert len(t.for_request(1)) == 2
    assert len(t.for_request(99)) == 0
