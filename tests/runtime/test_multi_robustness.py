"""Multi-processor engines under robustness: placement never migrates.

A retried request stays on the processor that first accepted it (its
blocks are local — re-routing would silently ship activations), shed
victims are evicted from the queue that admitted them, and per-processor
accounting (placements vs first admissions vs terminals) reconciles for
every router.
"""

import pytest

from repro.robustness import FaultPlan, RetryPolicy, RobustnessConfig
from repro.robustness.shedding import LoadShedConfig
from repro.runtime.kernel import KernelHooks
from repro.runtime.multi import ROUTERS, MultiProcessorEngine
from repro.scheduling.policies import SplitScheduler
from repro.scheduling.request import Request, TaskSpec
from repro.utils.rng import rng_from

CHAOS = RobustnessConfig(
    faults=FaultPlan(seed=23, fail_rate=0.12, stall_rate=0.05),
    retry=RetryPolicy(max_retries=2, backoff_base_ms=2.0),
    timeout_rr=60.0,
    load_shed=LoadShedConfig(max_queue_depth=6),
)


def poisson_arrivals(n=240, lam=9.0, seed=1):
    rng = rng_from(seed, "multi-robust")
    out = []
    t = 0.0
    exts = (10.0, 30.0, 65.0)
    blocks = ((10.0,), (15.0, 15.0), (21.0, 22.0, 22.0))
    for i in range(n):
        t += float(rng.exponential(lam))
        spec = TaskSpec(
            name=f"m{i % 3}", ext_ms=exts[i % 3], blocks_ms=blocks[i % 3]
        )
        out.append((t, Request(task=spec, arrival_ms=t)))
    return out


class PlacementTracker(KernelHooks):
    """Records which processor first admitted, retried and re-admitted
    each request."""

    def __init__(self):
        self.first_proc: dict[int, int] = {}
        self.admit_procs: dict[int, list[int]] = {}
        self.retry_procs: dict[int, list[int]] = {}
        self.terminals: dict[int, str] = {}

    def on_admit(self, request, now_ms, admitted, proc_index):
        key = id(request)
        self.first_proc.setdefault(key, proc_index)
        self.admit_procs.setdefault(key, []).append(proc_index)

    def on_retry(self, request, ready_ms, proc_index):
        self.retry_procs.setdefault(id(request), []).append(proc_index)

    def on_terminal(self, request, outcome, now_ms):
        key = id(request)
        assert key not in self.terminals, "request settled twice"
        self.terminals[key] = outcome


@pytest.mark.parametrize("router", sorted(ROUTERS))
class TestRoutersUnderRobustness:
    def _run(self, router):
        tracker = PlacementTracker()
        eng = MultiProcessorEngine(
            [SplitScheduler(), SplitScheduler(), SplitScheduler()],
            router=router,
            robustness=CHAOS,
            hooks=tracker,
        )
        arr = poisson_arrivals()
        res = eng.run(list(arr))
        return arr, res, tracker

    def test_per_proc_conservation(self, router):
        """Every submitted request is admitted once, settles exactly once,
        and the router's placement counts add up per processor."""
        arr, res, tracker = self._run(router)
        assert len(tracker.terminals) == len(arr)
        totals = res.engine_result
        assert (
            len(totals.completed)
            + len(totals.dropped)
            + len(totals.shed)
            + len(totals.failed)
            + len(totals.timed_out)
        ) == len(arr)
        # placements counts *arrival* dispatches only (retry re-admissions
        # never re-route), so it must equal first-admissions per proc.
        first_by_proc: dict[int, int] = {}
        for proc in tracker.first_proc.values():
            first_by_proc[proc] = first_by_proc.get(proc, 0) + 1
        assert sum(res.placements.values()) == len(arr)
        for idx, count in res.placements.items():
            assert first_by_proc.get(idx, 0) == count

    def test_retries_stay_on_first_processor(self, router):
        """Fault-retried requests are parked and re-admitted on the
        processor that first accepted them — never re-routed."""
        arr, res, tracker = self._run(router)
        retried = [k for k in tracker.retry_procs if tracker.retry_procs[k]]
        assert retried, "chaos plan produced no retries — test is vacuous"
        for key in retried:
            home = tracker.first_proc[key]
            assert all(p == home for p in tracker.retry_procs[key])
            assert all(p == home for p in tracker.admit_procs[key])

    def test_shed_victims_accounted_on_admitting_processor(self, router):
        """Shed requests were admitted exactly once (on one proc) and
        left through the shed bucket, not served elsewhere."""
        arr, res, tracker = self._run(router)
        shed = res.engine_result.shed
        assert shed, "chaos plan shed nothing — tighten max_queue_depth"
        for req in shed:
            key = id(req)
            assert tracker.terminals[key] == "shed"
            assert len(set(tracker.admit_procs[key])) == 1
