"""The parallel sweep layer: ordering, determinism, error handling."""

import os
from unittest import mock

import pytest

from repro.errors import SimulationError
from repro.runtime.sweeps import (
    JOBS_ENV,
    SweepCell,
    cell_seed,
    resolve_jobs,
    run_sweep,
    sweep_map,
)


def _square(x):
    return x * x


def _slow_identity(x):
    # Later-submitted cells finishing first must not reorder the results;
    # earlier cells sleep longer to force out-of-order completion.
    import time

    time.sleep(0.05 if x == 0 else 0.0)
    return x


def _boom(x):
    raise ValueError(f"cell {x} exploded")


class TestResolveJobs:
    def test_explicit_value_wins(self):
        assert resolve_jobs(3) == 3

    def test_none_defaults_to_cpu_count(self):
        with mock.patch.dict(os.environ, {JOBS_ENV: ""}):
            assert resolve_jobs(None) == (os.cpu_count() or 1)

    def test_env_override(self):
        with mock.patch.dict(os.environ, {JOBS_ENV: "2"}):
            assert resolve_jobs(None) == 2

    def test_env_non_integer_rejected(self):
        with mock.patch.dict(os.environ, {JOBS_ENV: "many"}):
            with pytest.raises(SimulationError):
                resolve_jobs(None)

    def test_zero_rejected(self):
        with pytest.raises(SimulationError):
            resolve_jobs(0)

    def test_negative_rejected(self):
        with pytest.raises(SimulationError):
            resolve_jobs(-2)


class TestCellSeed:
    def test_deterministic(self):
        assert cell_seed(0, "fig6", "s1", "split") == cell_seed(
            0, "fig6", "s1", "split"
        )

    def test_distinct_cells_distinct_seeds(self):
        seeds = {
            cell_seed(0, "fig6", scen, policy)
            for scen in ("s1", "s2", "s3")
            for policy in ("split", "prema")
        }
        assert len(seeds) == 6

    def test_root_changes_seed(self):
        assert cell_seed(0, "x") != cell_seed(1, "x")


class TestRunSweep:
    def test_sequential_order(self):
        cells = [SweepCell(fn=_square, args=(i,)) for i in range(5)]
        assert run_sweep(cells, jobs=1) == [0, 1, 4, 9, 16]

    def test_parallel_preserves_submission_order(self):
        cells = [SweepCell(fn=_slow_identity, args=(i,)) for i in range(4)]
        assert run_sweep(cells, jobs=2) == [0, 1, 2, 3]

    def test_parallel_matches_sequential(self):
        cells = [SweepCell(fn=_square, args=(i,)) for i in range(6)]
        assert run_sweep(cells, jobs=2) == run_sweep(cells, jobs=1)

    def test_empty_grid(self):
        assert run_sweep([], jobs=4) == []

    def test_accepts_generator(self):
        gen = (SweepCell(fn=_square, args=(i,)) for i in range(3))
        assert run_sweep(gen, jobs=1) == [0, 1, 4]

    def test_kwargs_pass_through(self):
        def f(a, b=0):
            return a + b

        assert run_sweep([SweepCell(fn=f, args=(1,), kwargs={"b": 2})]) == [3]

    def test_sequential_error_propagates(self):
        with pytest.raises(ValueError, match="cell 1 exploded"):
            run_sweep(
                [SweepCell(fn=_boom, args=(1,)), SweepCell(fn=_square, args=(2,))],
                jobs=1,
            )

    def test_parallel_error_propagates(self):
        cells = [SweepCell(fn=_square, args=(0,)), SweepCell(fn=_boom, args=(1,))]
        with pytest.raises(ValueError, match="cell 1 exploded"):
            run_sweep(cells, jobs=2)

    def test_warmup_runs_once_before_cells(self):
        calls = []
        run_sweep(
            [SweepCell(fn=_square, args=(2,))],
            jobs=1,
            warmup=lambda: calls.append("warm"),
        )
        assert calls == ["warm"]

    def test_warmup_skipped_for_empty_grid(self):
        calls = []
        run_sweep([], jobs=1, warmup=lambda: calls.append("warm"))
        assert calls == []


class TestSweepMap:
    def test_maps_in_order(self):
        assert sweep_map(_square, [(i,) for i in range(4)], jobs=1) == [0, 1, 4, 9]

    def test_parallel_matches_sequential(self):
        args = [(i,) for i in range(5)]
        assert sweep_map(_square, args, jobs=2) == sweep_map(_square, args, jobs=1)


class TestSimulationEquivalence:
    """Sequential and parallel runs of a real (reduced) grid must agree."""

    def test_fig6_cell_grid_jobs1_vs_jobs2(self):
        from repro.experiments import fig6
        from repro.experiments.config import ExperimentContext
        from repro.runtime.workload import Scenario

        ctx = ExperimentContext()
        scenarios = (Scenario("eq-low", 600.0, "low", n_requests=40),)
        seq = fig6.run(ctx, policies=("split", "fifo"), scenarios=scenarios, jobs=1)
        par = fig6.run(ctx, policies=("split", "fifo"), scenarios=scenarios, jobs=2)
        assert seq == par
