"""Frozen pre-kernel execution paths (revision 50545cc), verbatim.

These are the event loops the unified discrete-event kernel
(:mod:`repro.runtime.kernel`) replaced: the SequentialEngine fast path,
its robust fork, and the MultiProcessorEngine per-GPU loops. They are
kept here — unmodified except for class names and imports — as the
*old* side of the differential golden-trace suite
(``test_kernel_differential.py``), which proves the kernel produces
byte-identical block traces and float-identical QoS curves.

Do not fix, extend, or "clean up" this module: its only value is being
exactly what shipped before the kernel swap.
"""

from __future__ import annotations

import heapq
import itertools
import zlib
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator

from repro.errors import SimulationError
from repro.robustness.config import RobustnessConfig
from repro.robustness.faults import FaultKind
from repro.runtime.kernel import EngineResult
from repro.runtime.multi import MultiEngineResult
from repro.runtime.trace import ExecutionTrace, TraceEntry
from repro.scheduling.policies.base import Scheduler
from repro.scheduling.queue import RequestQueue
from repro.scheduling.request import Request

RecordSink = Callable[[Request, str], None]


class LegacySequentialEngine:
    """The pre-kernel SequentialEngine: forked fast/robust event loops."""

    def __init__(
        self,
        scheduler: Scheduler,
        keep_trace: bool = False,
        robustness: RobustnessConfig | None = None,
        queue_cls: type = RequestQueue,
    ):
        self.scheduler = scheduler
        self.keep_trace = keep_trace
        self.robustness = robustness
        self.queue_cls = queue_cls

    def run(self, arrivals: list[tuple[float, Request]]) -> EngineResult:
        for t, _ in arrivals:
            if t < 0:
                raise SimulationError(f"negative arrival time {t}")
        if self.robustness is None:
            return self._run_fast(arrivals)
        return self._run_robust(arrivals, self.robustness)

    # ------------------------------------------------------------ fault-free
    def _run_fast(self, arrivals: list[tuple[float, Request]]) -> EngineResult:
        result = EngineResult(
            trace=ExecutionTrace() if self.keep_trace else None
        )
        schedule: list[tuple[float, Request]] = sorted(
            arrivals, key=lambda pair: pair[0]
        )

        def emit(req: Request, outcome: str) -> None:
            if outcome == "served":
                result.completed.append(req)
            else:
                result.dropped.append(req)

        self._event_loop(iter(schedule), emit, result)
        return result

    def run_stream(
        self,
        arrivals: Iterable[tuple[float, Request]],
        sink: RecordSink,
    ) -> EngineResult:
        if self.robustness is not None:
            raise SimulationError(
                "run_stream supports fault-free runs only; use run() with a "
                "RobustnessConfig"
            )
        result = EngineResult(
            trace=ExecutionTrace() if self.keep_trace else None
        )

        def validated(
            pairs: Iterable[tuple[float, Request]],
        ) -> Iterator[tuple[float, Request]]:
            last = 0.0
            for t, req in pairs:
                if t < 0:
                    raise SimulationError(f"negative arrival time {t}")
                if t < last:
                    raise SimulationError(
                        f"arrival stream not time-ordered: {t} after {last}"
                    )
                last = t
                yield t, req

        self._event_loop(validated(arrivals), sink, result)
        return result

    def _event_loop(
        self,
        schedule: Iterator[tuple[float, Request]],
        emit: RecordSink,
        result: EngineResult,
    ) -> None:
        queue = self.queue_cls()
        running: Request | None = None
        block_end = 0.0
        block_start = 0.0
        last_executed: Request | None = None
        now = 0.0
        pending: tuple[float, Request] | None = next(schedule, None)

        def dispatch(t: float) -> None:
            nonlocal running, block_end, block_start, last_executed
            if queue.empty:
                running = None
                return
            idx = self.scheduler.select(queue, t)
            if idx != 0:
                queue.move_to_front(idx)
            req = queue.peek()
            switch_cost = 0.0
            if (
                last_executed is not None
                and last_executed is not req
                and not last_executed.done
                and last_executed.started
            ):
                switch_cost = self.scheduler.preemption_overhead_ms
                last_executed.preemptions += 1
                result.preemptions += 1
            if last_executed is not None and last_executed is not req:
                result.context_switches += 1
            if not req.started:
                plan = self.scheduler.plan_for(req, queue, t)
                req.begin(plan, t)
            block_ms = req.pop_block()
            block_start = t + switch_cost
            block_end = block_start + block_ms
            running = req
            last_executed = req

        while pending is not None or running is not None or not queue.empty:
            next_arrival = pending[0] if pending is not None else float("inf")
            next_done = block_end if running is not None else float("inf")
            if running is None and not queue.empty:
                dispatch(now)
                continue
            if next_arrival == float("inf") and next_done == float("inf"):
                break
            if next_arrival <= next_done:
                now = next_arrival
                req = pending[1]  # type: ignore[index]
                pending = next(schedule, None)
                admitted = self.scheduler.on_arrival(queue, req, now)
                if not admitted:
                    result.n_dropped += 1
                    emit(req, "rejected")
            else:
                now = next_done
                req = running
                assert req is not None
                if result.trace is not None:
                    result.trace.record(
                        TraceEntry(
                            request_id=req.request_id,
                            task_type=req.task_type,
                            block_index=req.next_block - 1,
                            start_ms=block_start,
                            end_ms=now,
                        )
                    )
                running = None
                if req.blocks_left == 0:
                    req.finish_ms = now
                    queue.remove(req)
                    result.n_completed += 1
                    emit(req, "served")
                dispatch(now)

        if not queue.empty:
            raise SimulationError(
                f"engine finished with {len(queue)} requests still queued"
            )

    # --------------------------------------------------------------- faulty
    def _run_robust(
        self, arrivals: list[tuple[float, Request]], cfg: RobustnessConfig
    ) -> EngineResult:
        result = EngineResult(
            trace=ExecutionTrace() if self.keep_trace else None
        )
        injector = cfg.make_injector()
        shedder = cfg.make_shedder()
        retry = cfg.retry
        schedule: list[tuple[float, Request]] = sorted(
            arrivals, key=lambda pair: pair[0]
        )
        n_arrivals = len(schedule)
        next_idx = 0

        queue = self.queue_cls()
        retry_heap: list[tuple[float, int, Request]] = []
        retry_seq = itertools.count()
        running: Request | None = None
        pending_fail = False
        block_end = 0.0
        block_start = 0.0
        last_executed: Request | None = None
        now = 0.0

        def finish_terminal(req: Request, outcome: str, bucket: list[Request]) -> None:
            nonlocal last_executed
            req.outcome = outcome
            bucket.append(req)
            if last_executed is req:
                last_executed = None

        def shed_overload(t: float) -> None:
            if shedder is None:
                return
            for victim in shedder.select_victims(queue, t, exclude=running):
                queue.remove(victim)
                finish_terminal(victim, "shed", result.shed)

        def dispatch(t: float) -> None:
            nonlocal running, pending_fail, block_end, block_start, last_executed
            while not queue.empty:
                idx = self.scheduler.select(queue, t)
                if idx != 0:
                    queue.move_to_front(idx)
                req = queue.peek()
                if t >= cfg.deadline_ms(req):
                    queue.remove(req)
                    finish_terminal(req, "timed_out", result.timed_out)
                    continue
                decision = (
                    injector.decide(
                        req.task_type, req.arrival_ms, req.next_block, req.retries
                    )
                    if injector is not None
                    else None
                )
                if decision is not None and decision.kind is FaultKind.DROP:
                    queue.remove(req)
                    result.fault_drops += 1
                    finish_terminal(req, "failed", result.failed)
                    continue
                switch_cost = 0.0
                if (
                    last_executed is not None
                    and last_executed is not req
                    and not last_executed.done
                    and last_executed.started
                ):
                    switch_cost = self.scheduler.preemption_overhead_ms
                    last_executed.preemptions += 1
                    result.preemptions += 1
                if last_executed is not None and last_executed is not req:
                    result.context_switches += 1
                if not req.started:
                    plan = self.scheduler.plan_for(req, queue, t)
                    req.begin(plan, t)
                block_ms = req.pop_block()
                if decision is not None and decision.kind is FaultKind.STALL:
                    block_ms *= decision.stall_factor
                    result.stalls += 1
                pending_fail = (
                    decision is not None and decision.kind is FaultKind.FAIL
                )
                block_start = t + switch_cost
                block_end = block_start + block_ms
                running = req
                last_executed = req
                return
            running = None

        while (
            next_idx < n_arrivals
            or running is not None
            or not queue.empty
            or retry_heap
        ):
            next_arrival = (
                schedule[next_idx][0] if next_idx < n_arrivals else float("inf")
            )
            next_retry = retry_heap[0][0] if retry_heap else float("inf")
            next_done = block_end if running is not None else float("inf")
            if running is None and not queue.empty:
                dispatch(now)
                continue
            if (
                next_arrival == float("inf")
                and next_retry == float("inf")
                and next_done == float("inf")
            ):
                break
            if next_arrival <= min(next_retry, next_done):
                now = next_arrival
                req = schedule[next_idx][1]
                next_idx += 1
                admitted = self.scheduler.on_arrival(queue, req, now)
                if not admitted:
                    req.outcome = "rejected"
                    result.dropped.append(req)
                else:
                    shed_overload(now)
            elif next_retry <= next_done:
                now = next_retry
                _, _, req = heapq.heappop(retry_heap)
                if now >= cfg.deadline_ms(req):
                    finish_terminal(req, "timed_out", result.timed_out)
                    continue
                if self.scheduler.on_arrival(queue, req, now):
                    shed_overload(now)
                else:
                    req.outcome = "rejected"
                    result.dropped.append(req)
            else:
                now = next_done
                req = running
                assert req is not None
                if result.trace is not None:
                    result.trace.record(
                        TraceEntry(
                            request_id=req.request_id,
                            task_type=req.task_type,
                            block_index=req.next_block - 1,
                            start_ms=block_start,
                            end_ms=now,
                            failed=pending_fail,
                        )
                    )
                running = None
                if pending_fail:
                    pending_fail = False
                    result.fault_fails += 1
                    req.unpop_block()
                    req.retries += 1
                    queue.remove(req)
                    if retry.exhausted(req.retries):
                        finish_terminal(req, "failed", result.failed)
                    else:
                        result.retries += 1
                        if last_executed is req:
                            last_executed = None
                        heapq.heappush(
                            retry_heap,
                            (
                                now + retry.backoff_ms(req.retries - 1),
                                next(retry_seq),
                                req,
                            ),
                        )
                elif req.blocks_left == 0:
                    req.finish_ms = now
                    queue.remove(req)
                    if now > cfg.deadline_ms(req):
                        finish_terminal(req, "timed_out", result.timed_out)
                    else:
                        req.outcome = "served"
                        result.completed.append(req)
                dispatch(now)

        if not queue.empty:
            raise SimulationError(
                f"engine finished with {len(queue)} requests still queued"
            )
        result.n_completed = len(result.completed)
        result.n_dropped = len(result.dropped)
        return result


# --------------------------------------------------------------------- multi

LegacyRouter = Callable[[list["_LegacyProcessor"], Request], int]


def legacy_round_robin(processors, request):
    counter = sum(p.dispatched_arrivals for p in processors)
    return counter % len(processors)


def legacy_least_backlog(processors, request):
    def backlog(p):
        running = p.block_end - p.now if p.running is not None else 0.0
        return p.queue.total_backlog_ms() + max(0.0, running)

    return min(range(len(processors)), key=lambda i: backlog(processors[i]))


def legacy_shortest_queue(processors, request):
    return min(range(len(processors)), key=lambda i: len(processors[i].queue))


def legacy_model_affinity(processors, request):
    digest = zlib.crc32(request.task_type.encode("utf-8"))
    return digest % len(processors)


LEGACY_ROUTERS: dict[str, LegacyRouter] = {
    "round_robin": legacy_round_robin,
    "least_backlog": legacy_least_backlog,
    "shortest_queue": legacy_shortest_queue,
    "model_affinity": legacy_model_affinity,
}


@dataclass
class _LegacyProcessor:
    index: int
    scheduler: Scheduler
    queue: RequestQueue = field(default_factory=RequestQueue)
    running: Request | None = None
    block_end: float = float("inf")
    block_start: float = 0.0
    last_executed: Request | None = None
    now: float = 0.0
    dispatched_arrivals: int = 0
    trace: ExecutionTrace | None = None

    def dispatch(self, t: float, result: EngineResult) -> None:
        self.now = t
        if self.queue.empty:
            self.running = None
            self.block_end = float("inf")
            return
        idx = self.scheduler.select(self.queue, t)
        if idx != 0:
            self.queue.move_to_front(idx)
        req = self.queue.peek()
        switch_cost = 0.0
        last = self.last_executed
        if last is not None and last is not req and not last.done and last.started:
            switch_cost = self.scheduler.preemption_overhead_ms
            last.preemptions += 1
            result.preemptions += 1
        if last is not None and last is not req:
            result.context_switches += 1
        if not req.started:
            plan = self.scheduler.plan_for(req, self.queue, t)
            req.begin(plan, t)
        block_ms = req.pop_block()
        self.block_start = t + switch_cost
        self.block_end = self.block_start + block_ms
        self.running = req
        self.last_executed = req

    def finish_block(self, t: float, result: EngineResult) -> None:
        req = self.running
        assert req is not None
        if self.trace is not None:
            self.trace.record(
                TraceEntry(
                    request_id=req.request_id,
                    task_type=req.task_type,
                    block_index=req.next_block - 1,
                    start_ms=self.block_start,
                    end_ms=t,
                )
            )
        self.running = None
        self.block_end = float("inf")
        if req.blocks_left == 0:
            req.finish_ms = t
            self.queue.remove(req)
            result.completed.append(req)
        self.dispatch(t, result)


class LegacyMultiProcessorEngine:
    """The pre-kernel MultiProcessorEngine (fault-free, batch only)."""

    def __init__(
        self,
        schedulers: list[Scheduler],
        router: str | LegacyRouter = "least_backlog",
        keep_trace: bool = False,
    ):
        if not schedulers:
            raise SimulationError("need at least one processor")
        self.schedulers = schedulers
        if isinstance(router, str):
            if router not in LEGACY_ROUTERS:
                raise SimulationError(
                    f"unknown router {router!r}; one of {sorted(LEGACY_ROUTERS)}"
                )
            self.router: LegacyRouter = LEGACY_ROUTERS[router]
            self.router_name = router
        else:
            self.router = router
            self.router_name = getattr(router, "__name__", "custom")
        self.keep_trace = keep_trace

    def run(self, arrivals: list[tuple[float, Request]]) -> MultiEngineResult:
        result = EngineResult()
        processors = [
            _LegacyProcessor(
                index=i,
                scheduler=s,
                trace=ExecutionTrace() if self.keep_trace else None,
            )
            for i, s in enumerate(self.schedulers)
        ]
        placements = {i: 0 for i in range(len(processors))}
        heap: list[tuple[float, int, Request]] = []
        for i, (t, req) in enumerate(arrivals):
            if t < 0:
                raise SimulationError(f"negative arrival time {t}")
            heapq.heappush(heap, (t, i, req))

        while True:
            next_arrival = heap[0][0] if heap else float("inf")
            busy_end = min(
                (p.block_end for p in processors if p.running is not None),
                default=float("inf"),
            )
            idle_pending = next(
                (
                    p
                    for p in processors
                    if p.running is None and not p.queue.empty
                ),
                None,
            )
            if idle_pending is not None:
                idle_pending.dispatch(idle_pending.now, result)
                continue
            if next_arrival == float("inf") and busy_end == float("inf"):
                break
            if next_arrival <= busy_end:
                t, _, req = heapq.heappop(heap)
                target = self.router(processors, req)
                if not 0 <= target < len(processors):
                    raise SimulationError(
                        f"router returned invalid processor {target}"
                    )
                proc = processors[target]
                proc.now = max(proc.now, t)
                placements[target] += 1
                proc.dispatched_arrivals += 1
                admitted = proc.scheduler.on_arrival(proc.queue, req, t)
                if not admitted:
                    result.dropped.append(req)
            else:
                proc = min(
                    (p for p in processors if p.running is not None),
                    key=lambda p: p.block_end,
                )
                proc.now = proc.block_end
                proc.finish_block(proc.block_end, result)

        leftovers = sum(len(p.queue) for p in processors)
        if leftovers:
            raise SimulationError(
                f"multi-engine finished with {leftovers} requests queued"
            )
        traces = {
            p.index: p.trace for p in processors if p.trace is not None
        }
        return MultiEngineResult(
            engine_result=result, placements=placements, traces=traces
        )
