"""Architecture builders: Table-1 operator counts, published FLOPs/params."""

import pytest

from repro.graphs.validate import validate_graph
from repro.types import OpType
from repro.zoo.registry import get_model, model_names

# The paper's Table 1 (exact targets for the five evaluated models).
TABLE1_OPS = {
    "yolov2": 84,
    "googlenet": 142,
    "resnet50": 122,
    "vgg19": 44,
    "gpt2": 2534,
}

# Published architecture figures (GFLOPs as 2x MACs, params in millions),
# with generous tolerance for head/variant differences.
PUBLISHED = {
    "vgg19": {"gflops": (35, 45), "mparams": (138, 148)},
    "resnet50": {"gflops": (7, 9.5), "mparams": (23, 28)},
    "googlenet": {"gflops": (2.5, 4), "mparams": (5.5, 8)},
    "alexnet": {"gflops": (1.2, 1.7), "mparams": (57, 64)},
    "squeezenet": {"gflops": (1.0, 2.0), "mparams": (1.0, 1.6)},
    "mobilenetv2": {"gflops": (0.5, 0.7), "mparams": (3.0, 4.0)},
    "densenet": {"gflops": (5.0, 6.5), "mparams": (7.5, 8.5)},
    "efficientnet": {"gflops": (0.6, 1.0), "mparams": (4.8, 5.6)},
}


@pytest.mark.parametrize("name,expected", sorted(TABLE1_OPS.items()))
def test_table1_operator_counts_exact(name, expected):
    assert len(get_model(name, cached=True)) == expected


@pytest.mark.parametrize("name", model_names())
def test_builders_produce_valid_graphs(name):
    g = get_model(name)
    validate_graph(g)
    assert g.total_flops > 0
    assert g.total_param_bytes > 0


@pytest.mark.parametrize("name,bounds", sorted(PUBLISHED.items()))
def test_published_flops_and_params(name, bounds):
    g = get_model(name, cached=True)
    gflops = g.total_flops / 1e9
    mparams = g.total_param_bytes / 4e6
    lo, hi = bounds["gflops"]
    assert lo <= gflops <= hi, f"{name}: {gflops:.2f} GFLOPs outside [{lo}, {hi}]"
    lo, hi = bounds["mparams"]
    assert lo <= mparams <= hi, f"{name}: {mparams:.2f} Mparams outside [{lo}, {hi}]"


def test_vgg19_structure():
    g = get_model("vgg19", cached=True)
    convs = [op for op in g if op.op_type is OpType.CONV]
    pools = [op for op in g if op.op_type is OpType.MAXPOOL]
    gemms = [op for op in g if op.op_type is OpType.GEMM]
    assert len(convs) == 16
    assert len(pools) == 5
    assert len(gemms) == 3


def test_resnet50_structure():
    g = get_model("resnet50", cached=True)
    convs = [op for op in g if op.op_type is OpType.CONV]
    adds = [op for op in g if op.op_type is OpType.ADD]
    assert len(convs) == 53  # 1 stem + 48 bottleneck + 4 downsample
    assert len(adds) == 16


def test_googlenet_structure():
    g = get_model("googlenet", cached=True)
    concats = [op for op in g if op.op_type is OpType.CONCAT]
    assert len(concats) == 9  # one per inception module


def test_yolov2_structure():
    g = get_model("yolov2", cached=True)
    convs = [op for op in g if op.op_type is OpType.CONV]
    bns = [op for op in g if op.op_type is OpType.BATCHNORM]
    assert len(convs) == 23
    assert len(bns) == 22  # all but the detection head conv


def test_gpt2_structure():
    g = get_model("gpt2", cached=True)
    matmuls = [op for op in g if op.op_type is OpType.MATMUL]
    gemms = [op for op in g if op.op_type is OpType.GEMM]
    softmaxes = [op for op in g if op.op_type is OpType.SOFTMAX]
    # 2 matmuls per head per layer = 2 * 12 * 12
    assert len(matmuls) == 288
    # qkv + proj + fc1 + fc2 per layer, + lm_head
    assert len(gemms) == 4 * 12 + 1
    # one softmax per head per layer
    assert len(softmaxes) == 144


def test_gpt2_seq_parameter_changes_shapes_not_count():
    short = get_model("gpt2")
    from repro.zoo.gpt2 import build_gpt2

    longer = build_gpt2(seq=64)
    assert len(short) == len(longer)
    assert longer.total_flops > short.total_flops


def test_activations_shrink_toward_back_for_cnns():
    """The §2.4 observation: boundary data volume decreases with depth."""
    for name in ("vgg19", "resnet50", "googlenet"):
        g = get_model(name, cached=True)
        profile = g.crossing_bytes_profile()
        n = len(profile)
        front = profile[: n // 4].mean()
        back = profile[-n // 4 :].mean()
        assert front > back, f"{name}: front {front} !> back {back}"


def test_input_shapes():
    assert get_model("yolov2", cached=True).inputs[0].shape == (1, 3, 416, 416)
    assert get_model("gpt2", cached=True).inputs[0].shape == (1, 32)
    assert get_model("vgg19", cached=True).inputs[0].shape == (1, 3, 224, 224)
