"""ResNet/VGG family variants (beyond the paper's evaluated five)."""

import pytest

from repro.graphs.validate import validate_graph
from repro.zoo.registry import get_model
from repro.zoo.resnet import build_resnet
from repro.zoo.vgg import build_vgg16

# Published parameter counts (millions), 4 bytes each.
PARAMS_M = {18: 11.7, 34: 21.8, 50: 25.5, 101: 44.5, 152: 60.2}


@pytest.mark.parametrize("depth", sorted(PARAMS_M))
def test_resnet_family_params_match_published(depth):
    g = build_resnet(depth)
    validate_graph(g)
    mparams = g.total_param_bytes / 4e6
    assert mparams == pytest.approx(PARAMS_M[depth], rel=0.03), depth


def test_resnet_depth_increases_ops_and_flops():
    graphs = [build_resnet(d) for d in (18, 34, 50, 101, 152)]
    ops = [len(g) for g in graphs]
    flops = [g.total_flops for g in graphs]
    assert ops == sorted(ops)
    assert flops == sorted(flops)


def test_resnet50_via_generic_matches_dedicated():
    generic = build_resnet(50)
    dedicated = get_model("resnet50")
    assert len(generic) == len(dedicated)
    assert generic.total_flops == pytest.approx(dedicated.total_flops)
    assert generic.total_param_bytes == dedicated.total_param_bytes


def test_unsupported_depth():
    with pytest.raises(ValueError, match="depth"):
        build_resnet(77)


def test_resnet_shallow_marked_short():
    assert build_resnet(18).metadata["request_class"] == "short"
    assert build_resnet(101).metadata["request_class"] == "long"


def test_vgg16_structure():
    g = build_vgg16()
    validate_graph(g)
    mparams = g.total_param_bytes / 4e6
    assert mparams == pytest.approx(138.4, rel=0.02)
    # 13 conv + 13 relu + 5 pool + flatten + 3 fc + 2 relu + softmax = 38
    assert len(g) == 38


def test_variants_registered():
    for name in ("vgg16", "resnet18", "resnet34", "resnet101", "resnet152"):
        g = get_model(name, cached=True)
        assert g.name == name


def test_variants_splittable():
    """The full offline pipeline works on out-of-sample variants."""
    from repro.hardware.presets import jetson_nano
    from repro.profiling.profiler import Profiler
    from repro.splitting.genetic import GAConfig, GeneticSplitter

    profile = Profiler(jetson_nano()).profile(get_model("resnet101", cached=True))
    result = GeneticSplitter(GAConfig(seed=0)).search(profile, 3)
    assert result.partition.n_blocks == 3
    assert result.sigma_ms < profile.total_ms * 0.05
