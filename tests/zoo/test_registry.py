"""Model registry behaviour."""

import pytest

from repro.errors import UnknownModelError
from repro.zoo.registry import (
    EVALUATED_MODELS,
    BUILDERS,
    clear_cache,
    get_model,
    model_names,
)


def test_evaluated_models_are_the_paper_five():
    assert set(EVALUATED_MODELS) == {
        "yolov2",
        "googlenet",
        "resnet50",
        "vgg19",
        "gpt2",
    }


def test_model_names_sorted_and_complete():
    names = model_names()
    assert list(names) == sorted(names)
    assert set(names) == set(BUILDERS)


def test_unknown_model_raises_with_suggestions():
    with pytest.raises(UnknownModelError, match="resnet50"):
        get_model("resnet999")


def test_case_insensitive_lookup():
    assert get_model("ResNet50").name == "resnet50"


def test_cached_returns_same_instance():
    clear_cache()
    a = get_model("vgg19", cached=True)
    b = get_model("vgg19", cached=True)
    assert a is b


def test_uncached_returns_fresh_instance():
    a = get_model("vgg19")
    b = get_model("vgg19")
    assert a is not b


def test_clear_cache():
    a = get_model("vgg19", cached=True)
    clear_cache()
    b = get_model("vgg19", cached=True)
    assert a is not b
