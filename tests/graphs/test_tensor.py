"""TensorSpec shape/dtype accounting."""

import pytest

from repro.graphs.tensor import TensorSpec


def test_numel_and_nbytes():
    t = TensorSpec("x", (1, 3, 224, 224))
    assert t.numel == 3 * 224 * 224
    assert t.nbytes == t.numel * 4


def test_fp16_halves_bytes():
    a = TensorSpec("x", (8, 8), dtype="float32")
    b = TensorSpec("x", (8, 8), dtype="float16")
    assert b.nbytes * 2 == a.nbytes


def test_int64_bytes():
    t = TensorSpec("ids", (1, 32), dtype="int64")
    assert t.nbytes == 32 * 8
    assert t.itemsize == 8


def test_unknown_dtype_rejected():
    with pytest.raises(ValueError, match="dtype"):
        TensorSpec("x", (1,), dtype="complex128")


def test_nonpositive_dim_rejected():
    with pytest.raises(ValueError, match="non-positive"):
        TensorSpec("x", (1, 0, 3))


def test_with_name_preserves_shape():
    t = TensorSpec("x", (2, 3)).with_name("y")
    assert t.name == "y"
    assert t.shape == (2, 3)


def test_str_compact():
    assert str(TensorSpec("x", (1, 2))) == "x:1x2:float32"


def test_frozen_and_hashable():
    t = TensorSpec("x", (1,))
    assert hash(t) == hash(TensorSpec("x", (1,)))
    with pytest.raises(AttributeError):
        t.name = "y"
