"""Property-based round-trip of the .ronnx serializer on random graphs."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.graph import ModelGraph
from repro.graphs.operator import Operator
from repro.graphs.serialize import dumps_ronnx, loads_ronnx
from repro.graphs.tensor import TensorSpec
from repro.graphs.validate import validate_graph
from repro.types import OpType

_NAMES = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz_0123456789", min_size=1, max_size=12
)
_SHAPES = st.lists(st.integers(1, 32), min_size=1, max_size=4).map(tuple)
_DTYPES = st.sampled_from(["float32", "float16", "int64", "int8"])
_OPTYPES = st.sampled_from(list(OpType))


@st.composite
def random_graph(draw) -> ModelGraph:
    """A random valid chain-with-skips graph."""
    n_ops = draw(st.integers(1, 12))
    input_spec = TensorSpec("input", draw(_SHAPES), draw(_DTYPES))
    g = ModelGraph(name=draw(_NAMES), inputs=(input_spec,))
    produced = [input_spec]
    for i in range(n_ops):
        # Each op consumes 1-2 earlier tensors (always includes the most
        # recent, to keep the chain connected and topological).
        inputs = [produced[-1]]
        if len(produced) > 1 and draw(st.booleans()):
            extra = produced[draw(st.integers(0, len(produced) - 2))]
            if extra.name != inputs[0].name:
                inputs.append(extra)
        out = TensorSpec(f"t{i}", draw(_SHAPES), draw(_DTYPES))
        g.add(
            Operator(
                name=f"op{i}",
                op_type=draw(_OPTYPES),
                inputs=tuple(inputs),
                outputs=(out,),
                flops=float(draw(st.integers(0, 10**9))),
                param_bytes=draw(st.integers(0, 10**7)),
                attributes={"k": draw(st.integers(0, 9))},
            )
        )
        produced.append(out)
    return g


@given(random_graph())
@settings(max_examples=100, deadline=None)
def test_roundtrip_preserves_everything(graph):
    validate_graph(graph)
    restored = loads_ronnx(dumps_ronnx(graph))
    assert restored.name == graph.name
    assert restored.inputs == graph.inputs
    assert len(restored) == len(graph)
    for a, b in zip(graph.operators, restored.operators):
        assert a == b
        assert a.attributes == b.attributes
    # Derived structures agree too.
    assert (
        restored.crossing_bytes_profile().tolist()
        == graph.crossing_bytes_profile().tolist()
    )


@given(random_graph())
@settings(max_examples=50, deadline=None)
def test_double_roundtrip_is_identity(graph):
    once = dumps_ronnx(graph)
    twice = dumps_ronnx(loads_ronnx(once))
    assert once == twice
