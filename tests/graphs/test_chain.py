"""ExecutionChain: cut-position bookkeeping."""

import pytest

from repro.errors import GraphError
from repro.graphs.chain import ExecutionChain

from tests.graphs.test_graph import linear_graph, skip_graph


def test_from_graph_requires_two_ops():
    with pytest.raises(GraphError, match="at least 2"):
        ExecutionChain.from_graph(linear_graph(1))


def test_n_cut_positions():
    ch = ExecutionChain.from_graph(linear_graph(5))
    assert ch.n_cut_positions == 4
    assert len(ch) == 5


def test_cut_bytes_bounds_checked():
    ch = ExecutionChain.from_graph(linear_graph(3))
    assert ch.cut_bytes(0) == 40
    with pytest.raises(GraphError):
        ch.cut_bytes(2)


def test_crossing_bytes_readonly():
    ch = ExecutionChain.from_graph(linear_graph(3))
    with pytest.raises(ValueError):
        ch.crossing_bytes[0] = 99


def test_blocks_for_cuts():
    ch = ExecutionChain.from_graph(linear_graph(6))
    blocks = ch.blocks_for((1, 3))
    assert [list(b) for b in blocks] == [[0, 1], [2, 3], [4, 5]]


def test_blocks_for_no_cuts():
    ch = ExecutionChain.from_graph(linear_graph(4))
    assert [list(b) for b in ch.blocks_for(())] == [[0, 1, 2, 3]]


def test_skip_graph_chain():
    ch = ExecutionChain.from_graph(skip_graph())
    # cut after op1 crosses a_out + b_out = 80 bytes
    assert ch.cut_bytes(1) == 80
    assert ch.name == "skip"
