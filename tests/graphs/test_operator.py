"""Operator invariants and derived byte/intensity figures."""

import pytest

from repro.graphs.operator import Operator
from repro.graphs.tensor import TensorSpec
from repro.types import OpType


def make_op(**kw):
    defaults = dict(
        name="conv0",
        op_type=OpType.CONV,
        inputs=(TensorSpec("in", (1, 3, 8, 8)),),
        outputs=(TensorSpec("out", (1, 16, 8, 8)),),
        flops=1000.0,
        param_bytes=432,
    )
    defaults.update(kw)
    return Operator(**defaults)


def test_memory_bytes_sums_all_traffic():
    op = make_op()
    expected = (3 * 64 + 16 * 64) * 4 + 432
    assert op.memory_bytes == expected


def test_arithmetic_intensity():
    op = make_op()
    assert op.arithmetic_intensity == pytest.approx(1000.0 / op.memory_bytes)


def test_zero_memory_zero_intensity():
    op = make_op(inputs=(), param_bytes=0, flops=0.0)
    # outputs still contribute bytes, intensity = 0 since flops = 0
    assert op.arithmetic_intensity == 0.0


def test_empty_name_rejected():
    with pytest.raises(ValueError, match="name"):
        make_op(name="")


def test_no_outputs_rejected():
    with pytest.raises(ValueError, match="outputs"):
        make_op(outputs=())


def test_negative_flops_rejected():
    with pytest.raises(ValueError, match="flops"):
        make_op(flops=-1.0)


def test_negative_params_rejected():
    with pytest.raises(ValueError, match="param_bytes"):
        make_op(param_bytes=-1)


def test_compute_bound_classification():
    assert OpType.CONV.is_compute_bound
    assert OpType.GEMM.is_compute_bound
    assert not OpType.RELU.is_compute_bound


def test_reshaping_classification():
    assert OpType.RESHAPE.is_reshaping
    assert OpType.CAST.is_reshaping
    assert not OpType.CONV.is_reshaping


def test_str_includes_type():
    assert "Conv" in str(make_op())
