"""Whole-graph validation invariants."""

import pytest

from repro.errors import GraphError
from repro.graphs.graph import ModelGraph
from repro.graphs.operator import Operator
from repro.graphs.tensor import TensorSpec
from repro.graphs.validate import to_networkx, validate_graph
from repro.types import OpType
from repro.zoo.registry import get_model, model_names

from tests.graphs.test_graph import linear_graph, skip_graph


def test_valid_graphs_pass():
    validate_graph(linear_graph(4))
    validate_graph(skip_graph())


@pytest.mark.parametrize("name", model_names())
def test_all_zoo_models_validate(name):
    validate_graph(get_model(name, cached=True))


def test_empty_graph_rejected():
    g = ModelGraph(name="empty", inputs=(TensorSpec("input", (1,)),))
    with pytest.raises(GraphError, match="no operators"):
        validate_graph(g)


def test_no_inputs_rejected():
    g = ModelGraph(name="noin", inputs=())
    g.operators.append(
        Operator("x", OpType.RELU, (), (TensorSpec("o", (1,)),))
    )
    with pytest.raises(GraphError, match="no inputs"):
        validate_graph(g)


def test_non_topological_order_rejected():
    g = linear_graph(3)
    g.operators.reverse()  # break the invariant behind the builder's back
    g._producer = None
    g._consumers = None
    with pytest.raises(GraphError, match="not topological"):
        validate_graph(g)


def test_unreachable_island_rejected():
    g = linear_graph(2)
    # An operator consuming only its own island's tensor (appended raw).
    island_in = TensorSpec("island_src", (4,))
    g.operators.append(
        Operator("island", OpType.RELU, (), (island_in,))
    )
    g._producer = None
    g._consumers = None
    with pytest.raises(GraphError, match="unreachable"):
        validate_graph(g)


def test_to_networkx_edges():
    g = skip_graph()
    nxg = to_networkx(g)
    assert set(nxg.edges()) == {(0, 1), (0, 2), (1, 2)}
    assert nxg.edges[0, 2]["tensor"] == "a_out"
