""".ronnx round-tripping and error handling."""

import json

import pytest

from repro.errors import SerializationError
from repro.graphs.serialize import dump_ronnx, dumps_ronnx, load_ronnx, loads_ronnx
from repro.zoo.registry import get_model

from tests.graphs.test_graph import linear_graph, skip_graph


def graphs_equal(a, b) -> bool:
    if a.name != b.name or a.inputs != b.inputs or len(a) != len(b):
        return False
    return all(x == y for x, y in zip(a.operators, b.operators))


def test_roundtrip_linear():
    g = linear_graph(4)
    assert graphs_equal(g, loads_ronnx(dumps_ronnx(g)))


def test_roundtrip_skip():
    g = skip_graph()
    assert graphs_equal(g, loads_ronnx(dumps_ronnx(g)))


def test_roundtrip_real_model():
    g = get_model("googlenet")
    g2 = loads_ronnx(dumps_ronnx(g))
    assert graphs_equal(g, g2)
    assert g2.metadata["paper_operator_count"] == 142


def test_roundtrip_file(tmp_path):
    g = linear_graph(3)
    path = dump_ronnx(g, tmp_path / "m.ronnx")
    assert graphs_equal(g, load_ronnx(path))


def test_invalid_json_rejected():
    with pytest.raises(SerializationError, match="JSON"):
        loads_ronnx("not json {")


def test_non_object_rejected():
    with pytest.raises(SerializationError, match="object"):
        loads_ronnx("[1, 2]")


def test_wrong_schema_rejected():
    payload = json.loads(dumps_ronnx(linear_graph(2)))
    payload["schema"] = 99
    with pytest.raises(SerializationError, match="schema"):
        loads_ronnx(json.dumps(payload))


def test_missing_field_rejected():
    payload = json.loads(dumps_ronnx(linear_graph(2)))
    del payload["inputs"]
    with pytest.raises(SerializationError, match="inputs"):
        loads_ronnx(json.dumps(payload))


def test_bad_op_type_rejected():
    payload = json.loads(dumps_ronnx(linear_graph(2)))
    payload["operators"][0]["op_type"] = "NotAnOp"
    with pytest.raises(SerializationError, match="op_type"):
        loads_ronnx(json.dumps(payload))


def test_bad_tensor_rejected():
    payload = json.loads(dumps_ronnx(linear_graph(2)))
    payload["operators"][0]["outputs"][0]["shape"] = [0]
    with pytest.raises(SerializationError):
        loads_ronnx(json.dumps(payload))


def test_missing_file_raises(tmp_path):
    with pytest.raises(SerializationError, match="cannot read"):
        load_ronnx(tmp_path / "absent.ronnx")
