"""ModelGraph construction, indices, and cut geometry."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graphs.graph import ModelGraph
from repro.graphs.operator import Operator
from repro.graphs.tensor import TensorSpec
from repro.types import OpType


def linear_graph(n_ops: int = 4, width: int = 10) -> ModelGraph:
    """input -> op0 -> op1 -> ... (each output has `width` floats)."""
    g = ModelGraph(name="lin", inputs=(TensorSpec("input", (width,)),))
    prev = "input"
    for i in range(n_ops):
        out = TensorSpec(f"t{i}", (width,))
        g.add(
            Operator(
                name=f"op{i}",
                op_type=OpType.RELU,
                inputs=(TensorSpec(prev, (width,)),),
                outputs=(out,),
                flops=float(width),
            )
        )
        prev = f"t{i}"
    return g


def skip_graph() -> ModelGraph:
    """input -> a -> b -> add(a_out, b_out) — a residual edge."""
    g = ModelGraph(name="skip", inputs=(TensorSpec("input", (10,)),))
    g.add(
        Operator(
            "a", OpType.RELU, (TensorSpec("input", (10,)),), (TensorSpec("a_out", (10,)),)
        )
    )
    g.add(
        Operator(
            "b", OpType.RELU, (TensorSpec("a_out", (10,)),), (TensorSpec("b_out", (10,)),)
        )
    )
    g.add(
        Operator(
            "add",
            OpType.ADD,
            (TensorSpec("a_out", (10,)), TensorSpec("b_out", (10,))),
            (TensorSpec("sum", (10,)),),
        )
    )
    return g


class TestConstruction:
    def test_add_unknown_input_rejected(self):
        g = ModelGraph(name="g", inputs=(TensorSpec("input", (4,)),))
        with pytest.raises(GraphError, match="unknown tensor"):
            g.add(
                Operator(
                    "x", OpType.RELU, (TensorSpec("ghost", (4,)),), (TensorSpec("o", (4,)),)
                )
            )

    def test_redefining_tensor_rejected(self):
        g = linear_graph(2)
        with pytest.raises(GraphError, match="redefines"):
            g.add(
                Operator(
                    "dup", OpType.RELU, (TensorSpec("t0", (10,)),), (TensorSpec("t1", (10,)),)
                )
            )

    def test_len_iter_getitem(self):
        g = linear_graph(3)
        assert len(g) == 3
        assert [op.name for op in g] == ["op0", "op1", "op2"]
        assert g[1].name == "op1"


class TestIndices:
    def test_producer_index(self):
        g = linear_graph(3)
        assert g.producer == {"t0": 0, "t1": 1, "t2": 2}

    def test_consumers_index(self):
        g = skip_graph()
        assert g.consumers["a_out"] == [1, 2]
        assert g.consumers["b_out"] == [2]

    def test_output_tensors(self):
        g = skip_graph()
        outs = g.output_tensors
        assert [t.name for t in outs] == ["sum"]

    def test_indices_invalidate_on_add(self):
        g = linear_graph(2)
        _ = g.producer
        g.add(
            Operator(
                "extra", OpType.RELU, (TensorSpec("t1", (10,)),), (TensorSpec("t2", (10,)),)
            )
        )
        assert "t2" in g.producer


class TestCuts:
    def test_linear_crossing_single_tensor(self):
        g = linear_graph(4)
        crossing = g.crossing_tensors(1)
        assert [t.name for t in crossing] == ["t1"]

    def test_skip_edge_crosses(self):
        g = skip_graph()
        # Cut after op "b" (index 1): both a_out (skip) and b_out cross.
        names = sorted(t.name for t in g.crossing_tensors(1))
        assert names == ["a_out", "b_out"]

    def test_cut_out_of_range(self):
        g = linear_graph(3)
        with pytest.raises(GraphError, match="out of range"):
            g.crossing_tensors(2)  # last valid is n-2 = 1
        with pytest.raises(GraphError):
            g.crossing_tensors(-1)

    def test_crossing_bytes_profile_matches_pointwise(self):
        g = skip_graph()
        profile = g.crossing_bytes_profile()
        for i in range(len(g) - 1):
            expected = sum(t.nbytes for t in g.crossing_tensors(i))
            assert profile[i] == expected

    def test_crossing_bytes_linear_constant(self):
        g = linear_graph(5, width=10)
        np.testing.assert_array_equal(g.crossing_bytes_profile(), [40] * 4)

    def test_profile_single_op(self):
        g = linear_graph(1)
        assert g.crossing_bytes_profile().size == 0


class TestAggregates:
    def test_total_flops(self):
        g = linear_graph(3, width=10)
        assert g.total_flops == 30.0

    def test_str_mentions_name_and_ops(self):
        s = str(linear_graph(3))
        assert "lin" in s and "3 ops" in s
