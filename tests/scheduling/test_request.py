"""TaskSpec and Request state machine."""

import pytest

from repro.errors import SchedulingError
from repro.scheduling.request import Request, TaskSpec
from repro.types import RequestClass


def spec(name="m", ext=10.0, blocks=(4.0, 6.0), cls=RequestClass.SHORT):
    return TaskSpec(name=name, ext_ms=ext, blocks_ms=blocks, request_class=cls)


class TestTaskSpec:
    def test_totals(self):
        s = spec()
        assert s.split_total_ms == 10.0
        assert s.n_blocks == 2

    def test_unsplit(self):
        s = spec().unsplit()
        assert s.blocks_ms == (10.0,)
        assert s.name == "m"

    def test_unsplit_idempotent(self):
        s = spec(blocks=(10.0,))
        assert s.unsplit() is s

    def test_invalid_ext(self):
        with pytest.raises(SchedulingError):
            spec(ext=0.0)

    def test_empty_blocks(self):
        with pytest.raises(SchedulingError):
            spec(blocks=())

    def test_negative_block(self):
        with pytest.raises(SchedulingError):
            spec(blocks=(1.0, -1.0))


class TestRequest:
    def test_fresh_state(self):
        r = Request(task=spec(), arrival_ms=5.0)
        assert not r.started
        assert not r.done
        assert r.ext_left_ms == 10.0
        assert r.blocks_left == 2
        assert r.waited_ms(8.0) == 3.0

    def test_unique_ids(self):
        a = Request(task=spec(), arrival_ms=0.0)
        b = Request(task=spec(), arrival_ms=0.0)
        assert a.request_id != b.request_id

    def test_begin_fixes_plan(self):
        r = Request(task=spec(), arrival_ms=0.0)
        r.begin((10.0,), now_ms=2.0)
        assert r.started
        assert r.plan_ms == (10.0,)
        assert r.first_start_ms == 2.0
        assert r.ext_left_ms == 10.0

    def test_double_begin_rejected(self):
        r = Request(task=spec(), arrival_ms=0.0)
        r.begin((10.0,), 0.0)
        with pytest.raises(SchedulingError, match="already planned"):
            r.begin((10.0,), 1.0)

    def test_pop_blocks_consumes_plan(self):
        r = Request(task=spec(), arrival_ms=0.0)
        r.begin((4.0, 6.0), 0.0)
        assert r.pop_block() == 4.0
        assert r.ext_left_ms == 6.0
        assert r.blocks_left == 1
        assert r.pop_block() == 6.0
        assert r.blocks_left == 0
        with pytest.raises(SchedulingError, match="no blocks left"):
            r.pop_block()

    def test_pop_without_plan_rejected(self):
        r = Request(task=spec(), arrival_ms=0.0)
        with pytest.raises(SchedulingError, match="no plan"):
            r.pop_block()

    def test_e2e_and_rr(self):
        r = Request(task=spec(), arrival_ms=10.0)
        r.finish_ms = 40.0
        assert r.e2e_ms() == 30.0
        assert r.response_ratio_final() == 3.0

    def test_e2e_before_finish_rejected(self):
        r = Request(task=spec(), arrival_ms=0.0)
        with pytest.raises(SchedulingError, match="not finished"):
            r.e2e_ms()

    def test_waited_clamped_nonnegative(self):
        r = Request(task=spec(), arrival_ms=10.0)
        assert r.waited_ms(5.0) == 0.0
