"""Algorithm 1: the greedy response-ratio insertion."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.scheduling.greedy import greedy_insert, swap_gain
from repro.scheduling.queue import RequestQueue
from repro.scheduling.request import Request, TaskSpec

from tests.scheduling.test_request import spec


def req(name="m", ext=10.0, arrival=0.0, blocks=None, alpha=None):
    blocks = blocks or (ext,)
    if alpha is None:
        task = spec(name=name, ext=ext, blocks=blocks)
    else:
        task = TaskSpec(name=name, ext_ms=ext, blocks_ms=blocks, alpha=alpha)
    return Request(task=task, arrival_ms=arrival)


class TestSwapGain:
    def test_short_passes_long(self):
        short, long_ = req("s", ext=5.0), req("l", ext=50.0)
        assert swap_gain(short, long_) > 0

    def test_long_does_not_pass_short(self):
        short, long_ = req("s", ext=5.0), req("l", ext=50.0)
        assert swap_gain(long_, short) < 0

    def test_equal_requests_tie(self):
        a, b = req("a", ext=10.0), req("b", ext=10.0)
        assert swap_gain(a, b) == 0.0

    def test_partially_executed_long_is_harder_to_pass(self):
        long_ = req("l", ext=50.0, blocks=(25.0, 25.0))
        long_.begin((25.0, 25.0), 0.0)
        long_.pop_block()  # 25 ms left
        short = req("s", ext=20.0)
        # gain = 25/20 = 1.25, loss = 20/50 = 0.4 -> still swaps
        assert swap_gain(short, long_) > 0
        shorter_gain = swap_gain(req("s2", ext=30.0), long_)
        assert shorter_gain < swap_gain(short, long_)


class TestGreedyInsert:
    def test_empty_queue_head(self):
        q = RequestQueue()
        assert greedy_insert(q, req()) == 0

    def test_short_preempts_long(self):
        q = RequestQueue()
        q.append(req("vgg", ext=67.5))
        pos = greedy_insert(q, req("yolo", ext=10.8))
        assert pos == 0
        assert q[0].task_type == "yolo"

    def test_long_queues_behind_short(self):
        q = RequestQueue()
        q.append(req("yolo", ext=10.8))
        pos = greedy_insert(q, req("vgg", ext=67.5))
        assert pos == 1

    def test_fifo_within_task_type(self):
        q = RequestQueue()
        q.append(req("yolo", ext=10.8))
        pos = greedy_insert(q, req("yolo", ext=10.8))
        assert pos == 1  # same type: never passes

    def test_same_type_barrier_stops_bubble(self):
        q = RequestQueue()
        q.append(req("yolo", ext=10.8))
        q.append(req("vgg", ext=67.5))
        # New yolo passes the vgg but must stop behind the earlier yolo.
        pos = greedy_insert(q, req("yolo", ext=10.8))
        assert pos == 1
        assert [r.task_type for r in q] == ["yolo", "yolo", "vgg"]

    def test_bubbles_past_multiple(self):
        q = RequestQueue()
        q.append(req("vgg", ext=67.5))
        q.append(req("resnet", ext=28.35))
        pos = greedy_insert(q, req("yolo", ext=10.8))
        assert pos == 0

    def test_all_same_task_queue_is_fifo(self):
        q = RequestQueue()
        first = req("yolo", ext=10.8, arrival=0.0)
        second = req("yolo", ext=10.8, arrival=1.0)
        q.append(first)
        q.append(second)
        third = req("yolo", ext=10.8, arrival=2.0)
        assert greedy_insert(q, third) == 2
        assert [r.request_id for r in q] == [
            first.request_id,
            second.request_id,
            third.request_id,
        ]

    def test_strict_alpha_refuses_to_be_passed(self):
        # Equal ext would tie-swap at alpha parity, but the queued task's
        # tighter target (alpha=0.5) makes being passed cost 10/5 = 2.0
        # while passing it only gains 10/10 = 1.0: the bubble stops.
        q = RequestQueue()
        q.append(req("strict", ext=10.0, alpha=0.5))
        assert greedy_insert(q, req("lenient", ext=10.0, alpha=1.0)) == 1

    def test_strict_alpha_passes_lenient_equal_ext(self):
        # Mirror case: the arrival is the strict one, so the same asymmetry
        # now favours the swap (gain 10/5 = 2.0 vs loss 10/10 = 1.0).
        q = RequestQueue()
        q.append(req("lenient", ext=10.0, alpha=1.0))
        assert greedy_insert(q, req("strict", ext=10.0, alpha=0.5)) == 0

    def test_tie_swaps(self):
        # gain == loss (identical ext, different task): Algorithm 1's >= swaps.
        q = RequestQueue()
        q.append(req("a", ext=10.0))
        assert greedy_insert(q, req("b", ext=10.0)) == 0

    @given(
        st.lists(
            st.floats(min_value=1.0, max_value=100.0, allow_nan=False),
            min_size=0,
            max_size=12,
        ),
        st.floats(min_value=1.0, max_value=100.0, allow_nan=False),
    )
    @settings(max_examples=100)
    def test_insert_never_increases_pair_average_rr(self, exts, new_ext):
        """Every swap the bubble performs must strictly help the pair sum
        of normalised RRs; verify by recomputing totals before/after."""
        q = RequestQueue()
        for i, e in enumerate(exts):
            q.append(req(f"t{i}", ext=e))
        new = req("new", ext=new_ext)

        def total_normalised_rr(order):
            tot, ahead = 0.0, 0.0
            for r in order:
                tot += (ahead + r.ext_left_ms) / r.ext_ms
                ahead += r.ext_left_ms
            return tot

        baseline = total_normalised_rr(list(q) + [new])
        pos = greedy_insert(q, new)
        after = total_normalised_rr(list(q))
        assert after <= baseline + 1e-9
        assert q[pos] is new

    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["a", "b", "c"]),
                st.floats(min_value=1.0, max_value=100.0, allow_nan=False),
            ),
            min_size=1,
            max_size=15,
        )
    )
    @settings(max_examples=100)
    def test_fifo_preserved_within_type(self, specs):
        """After any arrival sequence, same-type requests stay in arrival
        order."""
        q = RequestQueue()
        arrival_order: dict[str, list[int]] = {}
        for i, (name, ext) in enumerate(specs):
            # Same task -> same ext (the model defines the time).
            r = req(name, ext={"a": 10.0, "b": 30.0, "c": 70.0}[name], arrival=float(i))
            arrival_order.setdefault(name, []).append(r.request_id)
            greedy_insert(q, r)
        for name, ids in arrival_order.items():
            in_queue = [r.request_id for r in q if r.task_type == name]
            assert in_queue == ids
