"""Property suite: RequestQueue vs the list-backed reference oracle.

Random mutation programs — appends, positional inserts, greedy/EDF/SJF
bubbles, head pops, peeks with engine-contract state mutations, moves,
removes, PREMA selections — are applied to both queue backends with the
*same* Request objects, and every step asserts identical ordering,
identical greedy insert positions, identical selections, and that the
deque backend's run-length summary stays consistent with its elements.

The programs respect the engine's dispatch discipline (a request's
scheduling state is only mutated after ``peek`` returned it), which is
the contract the run-length compression's soundness rests on.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.scheduling.greedy import greedy_insert
from repro.scheduling.policies.edf import EDFScheduler
from repro.scheduling.policies.prema import PremaScheduler, _select_scan
from repro.scheduling.policies.sjf import SJFScheduler
from repro.scheduling.queue import ListBackedRequestQueue, RequestQueue
from repro.scheduling.request import Request, TaskSpec
from repro.types import RequestClass

#: A small task pool engineered for adversarial cases: split and unsplit
#: plans, a strict (alpha < 1) and a lenient (alpha > 1) task, and the
#: tie pair — identical ext/target/remaining-time constants under two
#: names, so greedy swap gains hit exactly 0.0 and FIFO tie-breaks must
#: agree between backends.
TASKS = (
    TaskSpec("t-short", 10.0, (10.0,), RequestClass.SHORT),
    TaskSpec("t-split", 10.0, (5.0, 5.5), RequestClass.SHORT),
    TaskSpec("t-tie-a", 20.0, (20.0,), RequestClass.SHORT),
    TaskSpec("t-tie-b", 20.0, (10.0, 10.0), RequestClass.SHORT),
    TaskSpec("t-long", 80.0, (30.0, 30.0, 30.0), RequestClass.LONG, alpha=2.0),
    TaskSpec("t-strict", 40.0, (20.0, 21.0), RequestClass.LONG, alpha=0.5),
)

#: Coarse arrival grid so per-type minimum-arrival ties actually occur.
ARRIVALS = (0.0, 1.0, 2.0, 5.0, 10.0)

OPS = (
    "append", "insert", "greedy", "edf", "sjf", "pop", "peek",
    "move", "remove", "prema", "candidates", "greedy_batch",
)

_op = st.tuples(
    st.sampled_from(OPS),
    st.integers(0, len(TASKS) - 1),
    st.integers(0, len(ARRIVALS) - 1),
    st.integers(0, 2**16),
)


def _check_step(fast: RequestQueue, slow: ListBackedRequestQueue) -> None:
    assert [r.request_id for r in fast] == [r.request_id for r in slow]
    assert fast._runs_consistent()


def _run_program(ops) -> tuple[RequestQueue, ListBackedRequestQueue]:
    fast, slow = RequestQueue(), ListBackedRequestQueue()
    edf, sjf, prema = EDFScheduler(), SJFScheduler(), PremaScheduler()
    live: list[Request] = []
    now = 0.0
    for name, ti, ai, k in ops:
        now += 1.0
        if name in ("append", "insert", "greedy", "edf", "sjf"):
            req = Request(task=TASKS[ti], arrival_ms=ARRIVALS[ai])
            if name == "append":
                fast.append(req)
                slow.append(req)
            elif name == "insert":
                idx = k % (len(fast) + 1)
                fast.insert(idx, req)
                slow.insert(idx, req)
            elif name == "greedy":
                assert greedy_insert(fast, req) == greedy_insert(slow, req)
            elif name == "edf":
                edf.on_arrival(fast, req, now)
                edf.on_arrival(slow, req, now)
            else:
                sjf.on_arrival(fast, req, now)
                sjf.on_arrival(slow, req, now)
            live.append(req)
        elif name == "pop":
            if fast.empty:
                continue
            a, b = fast.pop_head(), slow.pop_head()
            assert a is b
            live.remove(a)
        elif name == "peek":
            # The engine contract: peek, then (and only then) mutate the
            # head's scheduling state; remove it when its plan runs dry.
            if fast.empty:
                continue
            a, b = fast.peek(), slow.peek()
            assert a is b
            if not a.started:
                a.begin(a.task.blocks_ms, now)
            a.pop_block()
            if a.blocks_left == 0:
                fast.remove(a)
                slow.remove(a)
                live.remove(a)
        elif name == "move":
            if fast.empty:
                continue
            idx = k % len(fast)
            fast.move_to_front(idx)
            slow.move_to_front(idx)
        elif name == "remove":
            if not live:
                continue
            req = live.pop(k % len(live))
            fast.remove(req)
            slow.remove(req)
        elif name == "greedy_batch":
            # The fast lane's batched admission: same objects into both
            # backends, positions must match the per-request bubble's.
            batch = [
                Request(
                    task=TASKS[(ti + j) % len(TASKS)],
                    arrival_ms=ARRIVALS[(ai + j) % len(ARRIVALS)],
                )
                for j in range(k % 3 + 1)
            ]
            assert fast.bulk_greedy_insert(batch) == slow.bulk_greedy_insert(
                batch
            )
            live.extend(batch)
        elif name == "prema":
            assert prema.select(fast, now) == _select_scan(slow, now)
        else:  # candidates — exercises the lazy arrival heaps mid-program
            got = {r.request_id for r in fast.min_arrival_candidates()}
            want = {r.request_id for r in slow.min_arrival_candidates()}
            assert got == want
        _check_step(fast, slow)
    return fast, slow


@settings(deadline=None, max_examples=150)
@given(st.lists(_op, max_size=80))
def test_random_programs_order_identically(ops):
    fast, slow = _run_program(ops)
    assert fast.task_types() == slow.task_types()
    assert fast.type_counts() == slow.type_counts()
    assert fast.total_backlog_ms() == slow.total_backlog_ms()
    for i in range(len(fast) + 1):
        assert fast.waiting_ahead_ms(i) == slow.waiting_ahead_ms(i)


class TestRunSummaryEdges:
    """Deterministic probes of the run-maintenance corner cases."""

    def _fill(self, queue, task, n, arrival=0.0):
        reqs = [Request(task=task, arrival_ms=arrival) for _ in range(n)]
        for r in reqs:
            queue.append(r)
        return reqs

    def test_interior_split_of_compressed_run(self):
        q = RequestQueue()
        self._fill(q, TASKS[0], 5)
        intruder = Request(task=TASKS[4], arrival_ms=0.0)
        q.insert(2, intruder)
        assert q._runs_consistent()
        assert q.task_types() == (
            ["t-short"] * 2 + ["t-long"] + ["t-short"] * 3
        )
        # One compressed run was split into [2, intruder, 3].
        assert [run[1] for run in q._runs] == [2, 1, 3]

    def test_peek_taints_head_into_exact_singleton(self):
        q = RequestQueue()
        reqs = self._fill(q, TASKS[1], 3)
        head = q.peek()
        assert head is reqs[0]
        runs = list(q._runs)
        assert runs[0][2] is head and runs[0][1] == 1
        assert runs[1][2] is None and runs[1][1] == 2
        # The engine may now mutate the peeked head; the summary stays
        # sound because only the exact singleton changed state.
        head.begin(head.task.blocks_ms, 0.0)
        head.pop_block()
        assert q._runs_consistent()

    def test_started_request_reinserted_as_exact_run(self):
        q = RequestQueue()
        self._fill(q, TASKS[0], 2)
        started = q.peek()
        started.begin(started.task.blocks_ms, 0.0)
        # A greedy arrival passing position 0 demotes the started head.
        q.move_to_front(1)
        assert q._runs_consistent()
        assert q._runs[1][2] is started

    def test_greedy_tie_pair_keeps_fifo_order(self):
        """swap_gain is exactly 0.0 between the tie tasks: the bubble must
        keep walking (strict < 0 stop), identically on both backends."""
        for cls in (RequestQueue, ListBackedRequestQueue):
            q = cls()
            first = Request(task=TASKS[2], arrival_ms=0.0)
            q.append(first)
            pos = greedy_insert(q, Request(task=TASKS[3], arrival_ms=1.0))
            assert pos == 0, cls.__name__

    def test_peek_taint_then_move_to_front(self):
        """Tainting the head of a compressed run and then moving another
        element to the front must leave the summary consistent: the exact
        singleton stays exact, the remainder stays compressed."""
        q = RequestQueue()
        reqs = self._fill(q, TASKS[0], 4)
        head = q.peek()  # splits [4] into [1 exact, 3 compressed]
        head.begin(head.task.blocks_ms, 0.0)
        q.move_to_front(3)
        assert q._runs_consistent()
        assert q[0] is reqs[3] and q[1] is head
        # The moved element rejoined at the front as its own run; the
        # started head is still certified by an exact run.
        runs = list(q._runs)
        assert runs[1][2] is head

    def test_remove_from_middle_of_compressed_run(self):
        q = RequestQueue()
        reqs = self._fill(q, TASKS[1], 5)
        q.remove(reqs[2])
        assert q._runs_consistent()
        assert len(q) == 4 and all(r is not reqs[2] for r in q)
        # Same-task neighbours: the run just shrinks, no split.
        assert [run[1] for run in q._runs] == [4]
        q.remove(reqs[0])  # head removal exercises the fast path
        assert q._runs_consistent()
        assert [run[1] for run in q._runs] == [3]

    def test_bulk_insert_matches_per_request_positions(self):
        """Batched admission lands every request where the one-at-a-time
        bubble would, including compressed-run merges."""
        batch_tasks = [TASKS[0], TASKS[0], TASKS[4], TASKS[0], TASKS[5]]
        lhs, rhs = RequestQueue(), RequestQueue()
        for r in self._fill(lhs, TASKS[1], 3):
            rhs.append(r)
        batch = [
            Request(task=t, arrival_ms=float(i))
            for i, t in enumerate(batch_tasks)
        ]
        import copy

        mirror = []
        for r in batch:
            twin = copy.deepcopy(r)
            twin.request_id = r.request_id
            mirror.append(twin)
        bulk_pos = lhs.bulk_greedy_insert(batch)
        one_pos = [greedy_insert(rhs, r) for r in mirror]
        assert bulk_pos == one_pos
        assert [r.request_id for r in lhs] == [r.request_id for r in rhs]
        assert lhs._runs_consistent() and rhs._runs_consistent()

    def test_bulk_insert_after_peek_taint(self):
        """A tainted (exact) head must be re-evaluated per element by the
        batched bubble, exactly like the per-request walk."""
        lhs, rhs = RequestQueue(), RequestQueue()
        for r in self._fill(lhs, TASKS[4], 2):
            rhs.append(r)
        head = lhs.peek()
        assert rhs.peek() is head  # shared objects, shared taint
        head.begin(head.task.blocks_ms, 0.0)
        head.pop_block()  # shrink remaining time: exact-run state
        batch = [Request(task=TASKS[0], arrival_ms=1.0) for _ in range(2)]
        import copy

        mirror = []
        for r in batch:
            twin = copy.deepcopy(r)
            twin.request_id = r.request_id
            mirror.append(twin)
        assert lhs.bulk_greedy_insert(batch) == [
            greedy_insert(rhs, r) for r in mirror
        ]
        assert [r.request_id for r in lhs] == [r.request_id for r in rhs]
        assert lhs._runs_consistent() and rhs._runs_consistent()
