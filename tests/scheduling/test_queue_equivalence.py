"""Property suite: RequestQueue vs the list-backed reference oracle.

Random mutation programs — appends, positional inserts, greedy/EDF/SJF
bubbles, head pops, peeks with engine-contract state mutations, moves,
removes, PREMA selections — are applied to both queue backends with the
*same* Request objects, and every step asserts identical ordering,
identical greedy insert positions, identical selections, and that the
deque backend's run-length summary stays consistent with its elements.

The programs respect the engine's dispatch discipline (a request's
scheduling state is only mutated after ``peek`` returned it), which is
the contract the run-length compression's soundness rests on.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.scheduling.greedy import greedy_insert
from repro.scheduling.policies.edf import EDFScheduler
from repro.scheduling.policies.prema import PremaScheduler, _select_scan
from repro.scheduling.policies.sjf import SJFScheduler
from repro.scheduling.queue import ListBackedRequestQueue, RequestQueue
from repro.scheduling.request import Request, TaskSpec
from repro.types import RequestClass

#: A small task pool engineered for adversarial cases: split and unsplit
#: plans, a strict (alpha < 1) and a lenient (alpha > 1) task, and the
#: tie pair — identical ext/target/remaining-time constants under two
#: names, so greedy swap gains hit exactly 0.0 and FIFO tie-breaks must
#: agree between backends.
TASKS = (
    TaskSpec("t-short", 10.0, (10.0,), RequestClass.SHORT),
    TaskSpec("t-split", 10.0, (5.0, 5.5), RequestClass.SHORT),
    TaskSpec("t-tie-a", 20.0, (20.0,), RequestClass.SHORT),
    TaskSpec("t-tie-b", 20.0, (10.0, 10.0), RequestClass.SHORT),
    TaskSpec("t-long", 80.0, (30.0, 30.0, 30.0), RequestClass.LONG, alpha=2.0),
    TaskSpec("t-strict", 40.0, (20.0, 21.0), RequestClass.LONG, alpha=0.5),
)

#: Coarse arrival grid so per-type minimum-arrival ties actually occur.
ARRIVALS = (0.0, 1.0, 2.0, 5.0, 10.0)

OPS = (
    "append", "insert", "greedy", "edf", "sjf", "pop", "peek",
    "move", "remove", "prema", "candidates",
)

_op = st.tuples(
    st.sampled_from(OPS),
    st.integers(0, len(TASKS) - 1),
    st.integers(0, len(ARRIVALS) - 1),
    st.integers(0, 2**16),
)


def _check_step(fast: RequestQueue, slow: ListBackedRequestQueue) -> None:
    assert [r.request_id for r in fast] == [r.request_id for r in slow]
    assert fast._runs_consistent()


def _run_program(ops) -> tuple[RequestQueue, ListBackedRequestQueue]:
    fast, slow = RequestQueue(), ListBackedRequestQueue()
    edf, sjf, prema = EDFScheduler(), SJFScheduler(), PremaScheduler()
    live: list[Request] = []
    now = 0.0
    for name, ti, ai, k in ops:
        now += 1.0
        if name in ("append", "insert", "greedy", "edf", "sjf"):
            req = Request(task=TASKS[ti], arrival_ms=ARRIVALS[ai])
            if name == "append":
                fast.append(req)
                slow.append(req)
            elif name == "insert":
                idx = k % (len(fast) + 1)
                fast.insert(idx, req)
                slow.insert(idx, req)
            elif name == "greedy":
                assert greedy_insert(fast, req) == greedy_insert(slow, req)
            elif name == "edf":
                edf.on_arrival(fast, req, now)
                edf.on_arrival(slow, req, now)
            else:
                sjf.on_arrival(fast, req, now)
                sjf.on_arrival(slow, req, now)
            live.append(req)
        elif name == "pop":
            if fast.empty:
                continue
            a, b = fast.pop_head(), slow.pop_head()
            assert a is b
            live.remove(a)
        elif name == "peek":
            # The engine contract: peek, then (and only then) mutate the
            # head's scheduling state; remove it when its plan runs dry.
            if fast.empty:
                continue
            a, b = fast.peek(), slow.peek()
            assert a is b
            if not a.started:
                a.begin(a.task.blocks_ms, now)
            a.pop_block()
            if a.blocks_left == 0:
                fast.remove(a)
                slow.remove(a)
                live.remove(a)
        elif name == "move":
            if fast.empty:
                continue
            idx = k % len(fast)
            fast.move_to_front(idx)
            slow.move_to_front(idx)
        elif name == "remove":
            if not live:
                continue
            req = live.pop(k % len(live))
            fast.remove(req)
            slow.remove(req)
        elif name == "prema":
            assert prema.select(fast, now) == _select_scan(slow, now)
        else:  # candidates — exercises the lazy arrival heaps mid-program
            got = {r.request_id for r in fast.min_arrival_candidates()}
            want = {r.request_id for r in slow.min_arrival_candidates()}
            assert got == want
        _check_step(fast, slow)
    return fast, slow


@settings(deadline=None, max_examples=150)
@given(st.lists(_op, max_size=80))
def test_random_programs_order_identically(ops):
    fast, slow = _run_program(ops)
    assert fast.task_types() == slow.task_types()
    assert fast.type_counts() == slow.type_counts()
    assert fast.total_backlog_ms() == slow.total_backlog_ms()
    for i in range(len(fast) + 1):
        assert fast.waiting_ahead_ms(i) == slow.waiting_ahead_ms(i)


class TestRunSummaryEdges:
    """Deterministic probes of the run-maintenance corner cases."""

    def _fill(self, queue, task, n, arrival=0.0):
        reqs = [Request(task=task, arrival_ms=arrival) for _ in range(n)]
        for r in reqs:
            queue.append(r)
        return reqs

    def test_interior_split_of_compressed_run(self):
        q = RequestQueue()
        self._fill(q, TASKS[0], 5)
        intruder = Request(task=TASKS[4], arrival_ms=0.0)
        q.insert(2, intruder)
        assert q._runs_consistent()
        assert q.task_types() == (
            ["t-short"] * 2 + ["t-long"] + ["t-short"] * 3
        )
        # One compressed run was split into [2, intruder, 3].
        assert [run[1] for run in q._runs] == [2, 1, 3]

    def test_peek_taints_head_into_exact_singleton(self):
        q = RequestQueue()
        reqs = self._fill(q, TASKS[1], 3)
        head = q.peek()
        assert head is reqs[0]
        runs = list(q._runs)
        assert runs[0][2] is head and runs[0][1] == 1
        assert runs[1][2] is None and runs[1][1] == 2
        # The engine may now mutate the peeked head; the summary stays
        # sound because only the exact singleton changed state.
        head.begin(head.task.blocks_ms, 0.0)
        head.pop_block()
        assert q._runs_consistent()

    def test_started_request_reinserted_as_exact_run(self):
        q = RequestQueue()
        self._fill(q, TASKS[0], 2)
        started = q.peek()
        started.begin(started.task.blocks_ms, 0.0)
        # A greedy arrival passing position 0 demotes the started head.
        q.move_to_front(1)
        assert q._runs_consistent()
        assert q._runs[1][2] is started

    def test_greedy_tie_pair_keeps_fifo_order(self):
        """swap_gain is exactly 0.0 between the tie tasks: the bubble must
        keep walking (strict < 0 stop), identically on both backends."""
        for cls in (RequestQueue, ListBackedRequestQueue):
            q = cls()
            first = Request(task=TASKS[2], arrival_ms=0.0)
            q.append(first)
            pos = greedy_insert(q, Request(task=TASKS[3], arrival_ms=1.0))
            assert pos == 0, cls.__name__
