"""Scheduler policies: arrival placement, selection, plans."""

import pytest

from repro.scheduling.policies import (
    ClockWorkScheduler,
    EDFScheduler,
    FIFOScheduler,
    PremaScheduler,
    RoundRobinScheduler,
    SJFScheduler,
    SplitScheduler,
)
from repro.scheduling.queue import RequestQueue
from repro.scheduling.request import Request, TaskSpec
from repro.splitting.elastic import ElasticSplitConfig
from repro.types import RequestClass


def spec(name="m", ext=10.0, blocks=None, cls=RequestClass.SHORT):
    return TaskSpec(
        name=name, ext_ms=ext, blocks_ms=blocks or (ext,), request_class=cls
    )


def req(name="m", ext=10.0, arrival=0.0, blocks=None, cls=RequestClass.SHORT):
    return Request(task=spec(name, ext, blocks, cls), arrival_ms=arrival)


class TestFIFO:
    def test_appends_and_unsplit_plan(self):
        s = FIFOScheduler()
        q = RequestQueue()
        r1 = req("a", blocks=(5.0, 5.0))
        assert s.on_arrival(q, r1, 0.0)
        s.on_arrival(q, req("b"), 1.0)
        assert [r.task_type for r in q] == ["a", "b"]
        assert s.plan_for(r1, q, 0.0) == (10.0,)
        assert s.select(q, 0.0) == 0


class TestClockWork:
    def test_no_drop_by_default(self):
        s = ClockWorkScheduler()
        q = RequestQueue()
        for i in range(10):
            assert s.on_arrival(q, req(f"t{i}", ext=100.0), 0.0)
        assert s.dropped == 0

    def test_drops_predicted_stragglers(self):
        s = ClockWorkScheduler(drop_alpha=3.0)
        q = RequestQueue()
        assert s.on_arrival(q, req("a", ext=10.0), 0.0)
        assert s.on_arrival(q, req("b", ext=10.0), 0.0)
        # Backlog 20 + own 10 over 10 = RR 3.0 <= 3.0: admitted.
        assert s.on_arrival(q, req("c", ext=10.0), 0.0)
        # Backlog 30 + 10 over 10 = 4.0 > 3.0: dropped.
        assert not s.on_arrival(q, req("d", ext=10.0), 0.0)
        assert s.dropped == 1
        assert len(q) == 3

    def test_invalid_drop_alpha(self):
        with pytest.raises(ValueError):
            ClockWorkScheduler(drop_alpha=1.0)


class TestPrema:
    def test_tokens_prefer_high_priority_waiters(self):
        s = PremaScheduler()
        q = RequestQueue()
        long_ = req("vgg", ext=67.5, arrival=0.0, cls=RequestClass.LONG)
        short = req("yolo", ext=10.8, arrival=50.0, cls=RequestClass.SHORT)
        q.append(long_)
        q.append(short)
        # At t=60: long waited 60 (slowdown .89 * prio 3), short waited 10
        # (slowdown ~.93 * prio 9) -> short wins.
        assert s.select(q, 60.0) == 1

    def test_long_wait_eventually_wins(self):
        s = PremaScheduler()
        q = RequestQueue()
        long_ = req("vgg", ext=67.5, arrival=0.0, cls=RequestClass.LONG)
        short = req("yolo", ext=10.8, arrival=10_000.0, cls=RequestClass.SHORT)
        q.append(long_)
        q.append(short)
        # Long has waited 10s: token 3*(1+148) >> short's 9*(1+0).
        assert s.select(q, 10_000.0) == 0

    def test_has_preemption_overhead(self):
        assert PremaScheduler().preemption_overhead_ms > 0

    def test_appends_fifo(self):
        s = PremaScheduler()
        q = RequestQueue()
        s.on_arrival(q, req("a"), 0.0)
        s.on_arrival(q, req("b"), 0.0)
        assert [r.task_type for r in q] == ["a", "b"]


class TestSJF:
    def test_orders_by_remaining(self):
        s = SJFScheduler()
        q = RequestQueue()
        s.on_arrival(q, req("long", ext=50.0), 0.0)
        s.on_arrival(q, req("short", ext=5.0), 0.0)
        s.on_arrival(q, req("mid", ext=20.0), 0.0)
        assert [r.task_type for r in q] == ["short", "mid", "long"]

    def test_never_passes_started_head(self):
        s = SJFScheduler()
        q = RequestQueue()
        running = req("long", ext=50.0)
        running.begin((50.0,), 0.0)
        q.append(running)
        s.on_arrival(q, req("short", ext=5.0), 0.0)
        assert q[0] is running


class TestEDF:
    def test_orders_by_deadline(self):
        s = EDFScheduler(alpha=4.0)
        q = RequestQueue()
        # Deadlines: 0 + 4*50 = 200 vs 10 + 4*10 = 50.
        s.on_arrival(q, req("long", ext=50.0, arrival=0.0), 0.0)
        s.on_arrival(q, req("short", ext=10.0, arrival=10.0), 10.0)
        assert [r.task_type for r in q] == ["short", "long"]

    def test_invalid_alpha(self):
        with pytest.raises(ValueError):
            EDFScheduler(alpha=0.0)

    def test_uses_block_plan(self):
        s = EDFScheduler()
        q = RequestQueue()
        r = req("m", blocks=(3.0, 7.0))
        assert s.plan_for(r, q, 0.0) == (3.0, 7.0)


class TestRoundRobin:
    def test_least_blocks_first(self):
        s = RoundRobinScheduler()
        q = RequestQueue()
        a = req("a", blocks=(5.0, 5.0), arrival=0.0)
        b = req("b", blocks=(5.0, 5.0), arrival=1.0)
        a.begin((5.0, 5.0), 0.0)
        a.pop_block()
        q.append(a)
        q.append(b)
        assert s.select(q, 10.0) == 1  # b has 0 blocks done, a has 1

    def test_fifo_tiebreak(self):
        s = RoundRobinScheduler()
        q = RequestQueue()
        q.append(req("a", arrival=5.0))
        q.append(req("b", arrival=1.0))
        assert s.select(q, 10.0) == 1


class TestSplitPolicy:
    def test_greedy_arrival_and_counter(self):
        s = SplitScheduler()
        q = RequestQueue()
        s.on_arrival(q, req("vgg", ext=67.5), 0.0)
        s.on_arrival(q, req("yolo", ext=10.8), 1.0)
        assert q[0].task_type == "yolo"
        assert s.preempt_inserts == 1

    def test_plan_splits_when_calm(self):
        s = SplitScheduler()
        q = RequestQueue()
        r = req("vgg", ext=67.5, blocks=(34.0, 34.0))
        q.append(r)
        assert s.plan_for(r, q, 0.0) == (34.0, 34.0)

    def test_plan_unsplit_when_overloaded(self):
        s = SplitScheduler(elastic=ElasticSplitConfig(max_queue_depth=2))
        q = RequestQueue()
        r = req("vgg", ext=67.5, blocks=(34.0, 34.0))
        q.append(r)
        for i in range(4):
            q.append(req(f"x{i}"))
        assert s.plan_for(r, q, 0.0) == (67.5,)
        assert s.elastic.suspensions == 1
