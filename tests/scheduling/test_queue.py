"""RequestQueue mutation surface."""

import pytest

from repro.errors import SchedulingError
from repro.scheduling.queue import RequestQueue
from repro.scheduling.request import Request

from tests.scheduling.test_request import spec


def req(name="m", ext=10.0, arrival=0.0):
    return Request(task=spec(name=name, ext=ext, blocks=(ext,)), arrival_ms=arrival)


def test_append_and_order():
    q = RequestQueue()
    a, b = req("a"), req("b")
    q.append(a)
    q.append(b)
    assert list(q) == [a, b]
    assert len(q) == 2
    assert q[1] is b


def test_insert_positions():
    q = RequestQueue()
    a, b, c = req("a"), req("b"), req("c")
    q.append(a)
    q.insert(0, b)
    q.insert(2, c)
    assert [r.task_type for r in q] == ["b", "a", "c"]


def test_insert_out_of_range():
    q = RequestQueue()
    with pytest.raises(SchedulingError):
        q.insert(1, req())


def test_pop_head():
    q = RequestQueue()
    a = req("a")
    q.append(a)
    assert q.pop_head() is a
    assert q.empty
    with pytest.raises(SchedulingError):
        q.pop_head()


def test_peek():
    q = RequestQueue()
    with pytest.raises(SchedulingError):
        q.peek()
    a = req()
    q.append(a)
    assert q.peek() is a
    assert len(q) == 1


def test_move_to_front():
    q = RequestQueue()
    a, b, c = req("a"), req("b"), req("c")
    for r in (a, b, c):
        q.append(r)
    q.move_to_front(2)
    assert [r.task_type for r in q] == ["c", "a", "b"]
    with pytest.raises(SchedulingError):
        q.move_to_front(5)


def test_remove():
    q = RequestQueue()
    a, b = req("a"), req("b")
    q.append(a)
    q.append(b)
    q.remove(a)
    assert list(q) == [b]
    with pytest.raises(SchedulingError):
        q.remove(a)


def test_waiting_ahead_and_backlog():
    q = RequestQueue()
    q.append(req("a", ext=5.0))
    q.append(req("b", ext=7.0))
    q.append(req("c", ext=11.0))
    assert q.waiting_ahead_ms(0) == 0.0
    assert q.waiting_ahead_ms(2) == 12.0
    assert q.total_backlog_ms() == 23.0


def test_task_types():
    q = RequestQueue()
    q.append(req("x"))
    q.append(req("y"))
    assert q.task_types() == ["x", "y"]
