"""Eq. 3 and Algorithm 1's ResponseRatio."""

import pytest

from repro.errors import SchedulingError
from repro.scheduling.request import Request
from repro.scheduling.response_ratio import predicted_response_ratio, response_ratio

from tests.scheduling.test_request import spec


def test_idle_system_rr_is_one():
    # No waiting at all: RR = ext/ext = 1.
    assert response_ratio(0.0, 0.0, 10.0, 10.0) == 1.0


def test_eq3_decomposition():
    # waited 5 + waiting 15 + ext 10 over ext 10 = 3.0
    assert response_ratio(5.0, 15.0, 10.0, 10.0) == 3.0


def test_alpha_scales_target():
    base = response_ratio(5.0, 15.0, 10.0, 10.0)
    assert response_ratio(5.0, 15.0, 10.0, 10.0, alpha=2.0) == base / 2.0


def test_invalid_inputs():
    with pytest.raises(SchedulingError):
        response_ratio(0, 0, 1, 0.0)
    with pytest.raises(SchedulingError):
        response_ratio(0, 0, 1, 1.0, alpha=0.0)


def test_predicted_rr_uses_live_state():
    r = Request(task=spec(ext=10.0, blocks=(4.0, 6.0)), arrival_ms=0.0)
    # Not started: waited = now, ext_left = full plan.
    assert predicted_response_ratio(r, waiting_ms=20.0, now_ms=5.0) == pytest.approx(
        (5.0 + 20.0 + 10.0) / 10.0
    )
    r.begin((4.0, 6.0), 5.0)
    r.pop_block()
    # One block done: ext_left is 6.
    assert predicted_response_ratio(r, waiting_ms=0.0, now_ms=9.0) == pytest.approx(
        (9.0 + 6.0) / 10.0
    )
