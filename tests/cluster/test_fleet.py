"""Fleet orchestrator: differential pins, determinism, sharding laws.

The two contracts that make the fleet layer trustworthy:

* a 1-node fleet on the default preset is the single-GPU simulator —
  violation-curve bits identical to ``simulate()``, every float identical
  to ``simulate_stream()`` (merge-into-fresh is a field copy);
* per-node shards are byte-identical across ``--jobs`` values and the
  merged fleet QoS is float-identical (parent-side sharding + ordered
  merge).
"""

import numpy as np
import pytest

from repro.cluster import FleetOrchestrator, NodeClass
from repro.errors import SimulationError
from repro.runtime.capture import float_bits
from repro.runtime.simulator import simulate, simulate_stream
from repro.runtime.workload import Scenario

MODELS = ("yolov2", "vgg19")
SEED = 5
SCENARIO = Scenario("fleet-test", 40.0, "high", 1500)


@pytest.fixture(scope="module")
def one_node():
    orch = FleetOrchestrator("jetson-nano:1", models=MODELS, seed=SEED)
    return orch.replay(SCENARIO, jobs=1, hist_bins=65536)


@pytest.fixture(scope="module")
def mixed():
    orch = FleetOrchestrator(
        "jetson-nano:2,desktop-gpu:1", models=MODELS, seed=SEED
    )
    return orch, orch.replay(SCENARIO, jobs=1)


class TestSingleNodeDifferential:
    def test_violation_curve_bits_match_simulate(self, one_node):
        rep = simulate("split", SCENARIO, models=MODELS, seed=SEED).report
        fleet_curve = one_node.qos.violation_curve()
        sim_curve = rep.violation_curve(one_node.qos.alphas)
        assert np.array_equal(fleet_curve, sim_curve)
        for a, b in zip(fleet_curve, sim_curve):
            assert float_bits(float(a)) == float_bits(float(b))

    def test_float_identical_to_simulate_stream(self, one_node):
        ref = simulate_stream("split", SCENARIO, models=MODELS, seed=SEED).qos
        qos = one_node.qos
        assert float_bits(qos.mean_latency_ms()) == float_bits(
            ref.mean_latency_ms()
        )
        assert float_bits(qos.jitter_ms()) == float_bits(ref.jitter_ms())
        assert float_bits(qos.mean_response_ratio()) == float_bits(
            ref.mean_response_ratio()
        )
        assert np.array_equal(qos.violation_counts(), ref.violation_counts())
        assert qos.totals() == ref.totals()
        for model in MODELS:
            assert float_bits(qos.mean_latency_ms(model)) == float_bits(
                ref.mean_latency_ms(model)
            )

    def test_no_transfer_on_one_node(self, one_node):
        assert one_node.transfer_hops == 0
        assert one_node.transfer_ms == 0.0


class TestJobsInvariance:
    def test_shards_and_qos_identical_across_jobs(self):
        orch = FleetOrchestrator(
            "jetson-nano:2,desktop-gpu:2", models=MODELS, seed=SEED
        )
        r1 = orch.replay(SCENARIO, jobs=1)
        r2 = orch.replay(SCENARIO, jobs=2)
        assert r1.digests == r2.digests
        assert float_bits(r1.qos.mean_latency_ms()) == float_bits(
            r2.qos.mean_latency_ms()
        )
        assert float_bits(r1.qos.jitter_ms()) == float_bits(
            r2.qos.jitter_ms()
        )
        assert np.array_equal(
            r1.qos.violation_counts(), r2.qos.violation_counts()
        )
        assert r1.qos.totals() == r2.qos.totals()
        assert r1.node_totals == r2.node_totals

    def test_replay_is_reproducible(self):
        mk = lambda: FleetOrchestrator(
            "jetson-nano:3", models=MODELS, seed=SEED
        ).replay(SCENARIO, jobs=1)
        a, b = mk(), mk()
        assert a.digests == b.digests
        assert float_bits(a.qos.mean_latency_ms()) == float_bits(
            b.qos.mean_latency_ms()
        )


class TestSharding:
    def test_conservation(self, mixed):
        _, res = mixed
        assert sum(res.placements.values()) == SCENARIO.n_requests
        assert res.qos.totals()["submitted"] == SCENARIO.n_requests

    def test_shards_time_ordered_and_hop_charged(self, mixed):
        orch, res = mixed
        shards = orch.shard(SCENARIO)
        assert sum(s.n_requests for s in shards) == SCENARIO.n_requests
        for shard in shards:
            assert np.all(np.diff(shard.enqueue_ms) >= 0.0)
            # Enqueue never precedes true arrival: hops only add delay.
            assert np.all(shard.enqueue_ms >= shard.arrival_ms)

    def test_transfer_accounted(self, mixed):
        _, res = mixed
        assert res.transfer_hops > 0
        assert res.transfer_ms > 0.0

    def test_faster_class_carries_more_load_per_node(self, mixed):
        _, res = mixed
        nano = [
            n for name, n in res.placements.items() if "nano" in name
        ]
        gpu = [
            n for name, n in res.placements.items() if "desktop" in name
        ]
        assert min(gpu) > max(nano)

    def test_capability_restricted_models_stay_on_capable_nodes(self):
        inventory = (
            NodeClass("jetson-nano", 2, supports=frozenset({MODELS[0]})),
            NodeClass("desktop-gpu", 1),
        )
        orch = FleetOrchestrator(inventory, models=MODELS, seed=SEED)
        shards = orch.shard(SCENARIO)
        vgg = MODELS.index("vgg19")
        for shard, nc_idx in zip(shards, orch._node_class):
            if orch.inventory[nc_idx].supports is not None:
                assert not np.any(shard.model_idx == vgg)


class TestFleetCapacity:
    def test_capacity_relative_to_reference_class(self, mixed):
        orch, _ = mixed
        by_name = {n.name: n for n in orch.nodes}
        assert by_name["jetson-nano/0"].capacity == pytest.approx(1.0)
        assert by_name["desktop-gpu/0"].capacity > 1.0


class TestValidation:
    def test_unsupported_policy_rejected(self):
        with pytest.raises(SimulationError, match="cannot run on fleet"):
            FleetOrchestrator("jetson-nano:1", models=MODELS, policy="rta")

    def test_unservable_model_rejected_up_front(self):
        inventory = (
            NodeClass("jetson-nano", 1, supports=frozenset({MODELS[0]})),
        )
        with pytest.raises(SimulationError, match="no node class"):
            FleetOrchestrator(inventory, models=MODELS)

    def test_empty_inventory_rejected(self):
        with pytest.raises(SimulationError, match="at least one node"):
            FleetOrchestrator((), models=MODELS)
