"""NodeProfile and fleet inventory semantics."""

import pytest

from repro.errors import SimulationError
from repro.hardware import NodeProfile, PRESETS, device_by_name
from repro.hardware.presets import jetson_nano
from repro.hardware.transfer import TransferModel
from repro.cluster import DEFAULT_INVENTORY, NodeClass, parse_inventory
from repro.scheduling.request import TaskSpec


def spec(name="m", ext=10.0):
    return TaskSpec(name=name, ext_ms=ext, blocks_ms=(ext,))


class TestNodeProfile:
    def test_resolve_swaps_to_local_catalogue(self):
        local = spec("m", ext=3.0)
        prof = NodeProfile(
            name="n", device=jetson_nano(), specs={"m": local}
        )
        assert prof.resolve(spec("m", ext=99.0)) is local

    def test_resolve_identity_for_unknown_model(self):
        prof = NodeProfile(name="n", device=jetson_nano())
        task = spec("m")
        assert prof.resolve(task) is task

    def test_resolve_refuses_unservable_model(self):
        prof = NodeProfile(
            name="n",
            device=jetson_nano(),
            supports=frozenset({"a"}),
        )
        with pytest.raises(SimulationError, match="cannot serve"):
            prof.resolve(spec("b"))

    def test_validation(self):
        with pytest.raises(SimulationError):
            NodeProfile(name="n", device=jetson_nano(), capacity=0.0)
        with pytest.raises(SimulationError):
            NodeProfile(
                name="n", device=jetson_nano(), preemption_overhead_ms=-1.0
            )

    def test_carries_transfer_model(self):
        prof = NodeProfile(name="n", device=jetson_nano())
        assert isinstance(prof.transfer, TransferModel)
        assert prof.transfer.device is prof.device


class TestPresetLookup:
    def test_device_by_name_round_trips_presets(self):
        for name in PRESETS:
            assert device_by_name(name).name == name

    def test_unknown_device_lists_presets(self):
        with pytest.raises(SimulationError, match="known presets"):
            device_by_name("tpu-v9")


class TestHopCost:
    def test_hop_charges_both_staging_legs_plus_ingress_overhead(self):
        src = TransferModel(device_by_name("jetson-nano"))
        dst = TransferModel(device_by_name("desktop-gpu"))
        nbytes = 1_000_000
        expected = (
            dst.device.block_overhead_ms
            + nbytes / src.device.staging_bandwidth * 1e3
            + nbytes / dst.device.staging_bandwidth * 1e3
        )
        assert src.hop_cost_ms(dst, nbytes) == pytest.approx(expected)

    def test_hop_is_asymmetric_across_unequal_links(self):
        a = TransferModel(device_by_name("jetson-nano"))
        b = TransferModel(device_by_name("desktop-gpu"))
        # Same wire legs, but the ingress overhead is the destination's.
        if a.device.block_overhead_ms != b.device.block_overhead_ms:
            assert a.hop_cost_ms(b, 1 << 20) != b.hop_cost_ms(a, 1 << 20)


class TestInventory:
    def test_default_inventory_is_100_nodes(self):
        classes = parse_inventory(DEFAULT_INVENTORY)
        assert sum(c.count for c in classes) == 100
        assert [c.device_name for c in classes] == [
            "jetson-nano", "jetson-xavier", "desktop-gpu"
        ]

    def test_parse_rejects_bad_entries(self):
        with pytest.raises(SimulationError, match="expected 'device:count'"):
            parse_inventory("jetson-nano")
        with pytest.raises(SimulationError, match="count"):
            parse_inventory("jetson-nano:lots")
        with pytest.raises(SimulationError, match="unknown device"):
            parse_inventory("abacus:3")
        with pytest.raises(SimulationError, match="no nodes"):
            parse_inventory(" , ")

    def test_count_must_be_positive(self):
        with pytest.raises(SimulationError, match=">= 1"):
            NodeClass(device_name="jetson-nano", count=0)

    def test_capability_tag(self):
        nc = NodeClass(
            device_name="jetson-nano", count=1, supports=frozenset({"a"})
        )
        assert nc.can_serve("a") and not nc.can_serve("b")
