"""Fleet fault tolerance: failover determinism, conservation, inertness.

Three contracts pin the chaos machinery:

* **Inertness** — with ``node_faults=None``, an empty plan, or a plan
  that compiles to all-healthy timelines, the fleet result is identical
  to HEAD's fault-free orchestrator: same shard bytes, same QoS floats
  (the differential below compares against a plan-less run).
* **Determinism** — a scripted kill schedule produces bit-identical
  shard digests and float-identical fleet QoS across ``--jobs`` values
  and across repeated runs (failover re-deals in the parent, replay
  merges in node order).
* **Conservation** — every sharded request reaches exactly one terminal
  outcome even with a tenth of the fleet dying mid-trace:
  ``submitted == served + rejected + shed + failed + timed_out``, both
  fleet-wide and summed over the per-node ``node_outcomes``.

The tier-1 cells run small; ``SPLIT_LARGE_N=1`` unlocks the 100k
acceptance replay. All chaos-marked tests also run in the CI chaos
matrix across three seeds (``SPLIT_CHAOS_SEED``).
"""

import math
import os

import numpy as np
import pytest

from repro.cluster import FleetOrchestrator, NodeClass
from repro.errors import SimulationError
from repro.robustness import NodeFaultEvent, NodeFaultKind, NodeFaultPlan
from repro.runtime.capture import float_bits
from repro.runtime.workload import Scenario

MODELS = ("yolov2", "vgg19")
SEED = int(os.environ.get("SPLIT_CHAOS_SEED", "5"))
#: Past fleet saturation (the aggregate service rate of this inventory
#: is below 2 requests / 8 ms), so queues are deep when nodes die —
#: exercising the queued-at-death and in-flight failure paths, not just
#: the re-deal. Trace span is about 1500/2 x 8 = 6000 ms.
SCENARIO = Scenario("fleet-chaos-test", 8.0, "high", 1500)
INVENTORY = "jetson-nano:2,desktop-gpu:2"


def conserved(totals, n):
    return (
        totals["submitted"] == n
        and totals["served"]
        + totals["rejected"]
        + totals["shed"]
        + totals["failed"]
        + totals["timed_out"]
        == n
    )


@pytest.fixture(scope="module")
def baseline():
    orch = FleetOrchestrator(INVENTORY, models=MODELS, seed=SEED)
    return orch.replay(SCENARIO, jobs=1)


@pytest.mark.chaos
class TestInertness:
    """No faults -> byte- and float-identical to the plan-less fleet."""

    @pytest.mark.parametrize(
        "plan",
        [
            None,
            NodeFaultPlan(),
            NodeFaultPlan(seed=SEED),  # enabled=False: rates all zero
        ],
        ids=["none", "empty", "seed-only"],
    )
    def test_identical_to_faultless(self, baseline, plan):
        orch = FleetOrchestrator(
            INVENTORY, models=MODELS, seed=SEED, node_faults=plan
        )
        res = orch.replay(SCENARIO, jobs=1)
        assert res.digests == baseline.digests
        assert res.qos.totals() == baseline.qos.totals()
        assert float_bits(res.qos.mean_latency_ms()) == float_bits(
            baseline.qos.mean_latency_ms()
        )
        assert np.array_equal(
            res.qos.violation_curve(), baseline.qos.violation_curve()
        )
        assert res.re_routed == 0 and res.failover_ms == 0.0
        assert all(
            w == ((0.0, math.inf),) for w in res.availability.values()
        )


def scripted_plan():
    return NodeFaultPlan(
        scripted=(
            NodeFaultEvent(
                NodeFaultKind.FAIL_RECOVER, 0, at_ms=1_000.0,
                recover_at_ms=4_000.0,
            ),
            NodeFaultEvent(NodeFaultKind.FAIL_STOP, 2, at_ms=2_500.0),
            NodeFaultEvent(
                NodeFaultKind.DEGRADE, 3, at_ms=500.0,
                recover_at_ms=5_000.0, service_multiplier=2.0,
            ),
        )
    )


@pytest.fixture(scope="module")
def chaos_run():
    orch = FleetOrchestrator(
        INVENTORY, models=MODELS, seed=SEED, node_faults=scripted_plan()
    )
    return orch, orch.replay(SCENARIO, jobs=1)


@pytest.mark.chaos
class TestScriptedFailover:
    def test_conservation_exact(self, chaos_run):
        _orch, res = chaos_run
        assert conserved(res.qos.totals(), SCENARIO.n_requests)
        per_node = sum(
            t["served"] + t["rejected"] + t["shed"] + t["failed"]
            + t["timed_out"]
            for t in res.node_outcomes
        )
        assert per_node == SCENARIO.n_requests

    def test_faults_actually_bit(self, chaos_run):
        _orch, res = chaos_run
        assert res.re_routed > 0
        assert res.failover_ms > 0.0
        assert res.qos.totals()["failed"] > 0

    def test_availability_timeline_reported(self, chaos_run):
        _orch, res = chaos_run
        avail = res.availability
        names = sorted(avail)
        down_then_up = [
            w for w in avail.values() if len(w) == 2
        ]
        dead = [
            w for w in avail.values()
            if len(w) == 1 and not math.isinf(w[0][1])
        ]
        assert len(down_then_up) == 1  # the fail-recover node
        assert len(dead) == 1  # the fail-stop node
        assert len(names) == res.n_nodes

    def test_dead_node_shard_ends_at_death(self, chaos_run):
        orch, _res = chaos_run
        shards = orch.shard(SCENARIO)
        # Node index 2 fail-stops at 2500 ms: nothing may be enqueued on
        # it at or after that instant.
        dead = shards[2]
        assert dead.enqueue_ms.size == 0 or float(dead.enqueue_ms.max()) < 2_500.0
        # The fail-recover node (index 0) has no enqueues inside its
        # outage window.
        gap = shards[0].enqueue_ms
        assert not np.any((gap >= 1_000.0) & (gap < 4_000.0))

    def test_jobs_and_rerun_identical(self, chaos_run):
        _orch, res = chaos_run
        again = FleetOrchestrator(
            INVENTORY, models=MODELS, seed=SEED, node_faults=scripted_plan()
        ).replay(SCENARIO, jobs=2)
        assert again.digests == res.digests
        assert again.qos.totals() == res.qos.totals()
        assert again.re_routed == res.re_routed
        assert float_bits(again.failover_ms) == float_bits(res.failover_ms)
        assert float_bits(again.qos.mean_latency_ms()) == float_bits(
            res.qos.mean_latency_ms()
        )
        assert np.array_equal(
            res.qos.violation_curve(), again.qos.violation_curve()
        )

    def test_failover_charges_hops(self, chaos_run):
        """Re-routed requests land later than their original enqueue:
        the hand-off hop is charged on top."""
        _orch, res = chaos_run
        assert res.failover_ms / res.re_routed > 0.0


@pytest.mark.chaos
class TestStochasticPlans:
    def test_stochastic_conservation(self):
        plan = NodeFaultPlan(
            seed=SEED, fail_stop_rate=0.25, fail_recover_rate=0.25,
            degrade_rate=0.25, degrade_multiplier=3.0,
        )
        orch = FleetOrchestrator(
            "jetson-nano:4,desktop-gpu:2", models=MODELS, seed=SEED,
            node_faults=plan,
        )
        res = orch.replay(SCENARIO, jobs=1)
        assert conserved(res.qos.totals(), SCENARIO.n_requests)

    def test_degrade_only_plan_serves_everything_later(self):
        """Pure degradation loses nothing — it only slows service, so
        conservation holds with zero failed and a worse violation curve."""
        plan = NodeFaultPlan(
            scripted=(
                NodeFaultEvent(
                    NodeFaultKind.DEGRADE, None, at_ms=0.0,
                    service_multiplier=3.0,
                ),
            )
        )
        clean = FleetOrchestrator(INVENTORY, models=MODELS, seed=SEED)
        slow = FleetOrchestrator(
            INVENTORY, models=MODELS, seed=SEED, node_faults=plan
        )
        r_clean = clean.replay(SCENARIO, jobs=1)
        r_slow = slow.replay(SCENARIO, jobs=1)
        assert r_slow.digests == r_clean.digests  # nothing re-routed
        assert r_slow.qos.totals()["failed"] == 0
        assert conserved(r_slow.qos.totals(), SCENARIO.n_requests)
        assert (
            r_slow.qos.violation_rate(8.0) >= r_clean.qos.violation_rate(8.0)
        )
        assert r_slow.qos.mean_latency_ms() > r_clean.qos.mean_latency_ms()


@pytest.mark.chaos
class TestCapabilityHoles:
    def test_killing_last_capable_node_names_the_model(self):
        """gpt2 is restricted to the desktop-gpu class here; fail-stopping
        the only desktop node mid-trace must raise a SimulationError that
        names the stranded model (satellite: capability_filter x failover)."""
        inventory = (
            NodeClass("jetson-nano", 2, supports=frozenset({"yolov2"})),
            NodeClass("desktop-gpu", 1),
        )
        models = ("yolov2", "gpt2")
        plan = NodeFaultPlan(
            scripted=(
                NodeFaultEvent(NodeFaultKind.FAIL_STOP, 2, at_ms=3_000.0),
            )
        )
        orch = FleetOrchestrator(
            inventory, models=models, seed=SEED, node_faults=plan
        )
        with pytest.raises(SimulationError, match="gpt2"):
            orch.shard(Scenario("hole", 40.0, "high", 800))

    def test_survivor_in_class_absorbs(self):
        """With a second node of the restricted class alive, the same kill
        re-routes instead of raising."""
        inventory = (
            NodeClass("jetson-nano", 2, supports=frozenset({"yolov2"})),
            NodeClass("desktop-gpu", 2),
        )
        models = ("yolov2", "gpt2")
        plan = NodeFaultPlan(
            scripted=(
                NodeFaultEvent(NodeFaultKind.FAIL_STOP, 2, at_ms=3_000.0),
            )
        )
        orch = FleetOrchestrator(
            inventory, models=models, seed=SEED, node_faults=plan
        )
        res = orch.replay(Scenario("hole-ok", 40.0, "high", 800), jobs=1)
        assert conserved(res.qos.totals(), 800)
        assert res.re_routed > 0


@pytest.mark.chaos
@pytest.mark.skipif(
    not os.environ.get("SPLIT_LARGE_N"),
    reason="set SPLIT_LARGE_N=1 for the 100k fleet chaos acceptance run",
)
class TestLargeAcceptance:
    def test_100k_ten_of_hundred_nodes(self):
        """The ISSUE acceptance cell: scripted fail-stop of 10/100 nodes
        mid-trace, 100k requests, exact conservation, identical digests
        and QoS across --jobs."""
        from repro.cluster import DEFAULT_INVENTORY
        from repro.experiments.fleet import derived_lambda_ms
        from repro.experiments.fleet_chaos import scripted_kill_schedule

        orch0 = FleetOrchestrator(DEFAULT_INVENTORY, seed=SEED)
        lambda_ms = derived_lambda_ms(orch0)
        scenario = Scenario("chaos-100k", lambda_ms, "high", 100_000)
        plan = scripted_kill_schedule(
            len(orch0.nodes), orch0.fault_horizon_ms(scenario)
        )
        assert (
            sum(1 for ev in plan.scripted
                if ev.kind is NodeFaultKind.FAIL_STOP) >= 5
        )
        orch = FleetOrchestrator(
            DEFAULT_INVENTORY, seed=SEED, node_faults=plan
        )
        r1 = orch.replay(scenario, jobs=1)
        r2 = orch.replay(scenario, jobs=2)
        assert conserved(r1.qos.totals(), 100_000)
        assert r1.digests == r2.digests
        assert r1.qos.totals() == r2.qos.totals()
        assert float_bits(r1.qos.mean_latency_ms()) == float_bits(
            r2.qos.mean_latency_ms()
        )
        assert r1.qos.totals()["failed"] > 0
        assert r1.re_routed > 0
