"""Cross-module integration: the full offline + online pipeline."""

import pytest

from repro.experiments.config import ExperimentContext
from repro.graphs.validate import validate_graph
from repro.hardware.presets import jetson_nano
from repro.profiling.profiler import Profiler
from repro.runtime.simulator import simulate
from repro.runtime.workload import Scenario
from repro.splitting.genetic import GAConfig, GeneticSplitter
from repro.splitting.metrics import expected_waiting_latency_ms
from repro.zoo.registry import EVALUATED_MODELS, get_model


def test_offline_pipeline_end_to_end():
    """graph -> validate -> profile -> GA split -> Eq. 1 improvement."""
    g = get_model("vgg19")
    validate_graph(g)
    profile = Profiler(jetson_nano()).profile(g)
    result = GeneticSplitter(GAConfig(seed=0)).search(profile, 3)
    split_wait = expected_waiting_latency_ms(result.partition.block_times_ms)
    vanilla_wait = expected_waiting_latency_ms([profile.total_ms])
    assert split_wait < vanilla_wait


def test_online_pipeline_end_to_end():
    """Workload -> engine -> QoS report, with blocks from the GA."""
    scen = Scenario("itest", 140.0, "high", n_requests=300)
    split = simulate("split", scen, keep_trace=True)
    split.engine_result.trace.verify()
    baseline = simulate("clockwork", scen)
    assert split.report.violation_rate(4.0) < baseline.report.violation_rate(4.0)
    # Preemption actually happened.
    assert split.report.preemption_count() > 0


def test_headline_directions_reduced_scale():
    """Both abstract claims hold directionally at 300 requests."""
    scen = Scenario("itest6", 115.0, "high", n_requests=300)
    runs = {p: simulate(p, scen) for p in ("split", "clockwork", "prema", "rta")}
    split = runs["split"].report
    for name in ("clockwork", "prema", "rta"):
        other = runs[name].report
        assert split.violation_rate(4.0) <= other.violation_rate(4.0)
    # Short-model jitter reduced vs RT-A by a large margin.
    assert split.jitter_ms("yolov2") < runs["rta"].report.jitter_ms("yolov2") * 0.6


def test_context_profiles_consistent_with_simulator():
    ctx = ExperimentContext()
    profiles = ctx.profiles()
    assert set(profiles) == set(EVALUATED_MODELS)
    for name, p in profiles.items():
        meta = get_model(name, cached=True).metadata
        assert p.total_ms == pytest.approx(meta["paper_latency_ms"])
