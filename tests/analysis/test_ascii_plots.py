"""ASCII line charts."""

import math

import pytest

from repro.analysis.ascii_plots import line_chart


def test_single_series_renders():
    out = line_chart({"a": [0.0, 1.0, 2.0, 3.0]})
    assert "o a" in out
    assert "3.000" in out and "0.000" in out


def test_two_series_distinct_markers():
    out = line_chart({"up": [0, 1, 2], "down": [2, 1, 0]})
    assert "o up" in out and "x down" in out


def test_dimensions():
    out = line_chart({"a": [0, 5, 10]}, width=30, height=8)
    lines = out.splitlines()
    # 8 canvas rows + axis + x labels + legend
    assert len(lines) == 11
    assert all(len(line) <= 30 + 12 for line in lines[:8])


def test_nan_skipped():
    out = line_chart({"a": [1.0, math.nan, 3.0]})
    assert "o a" in out


def test_constant_series_ok():
    out = line_chart({"a": [2.0, 2.0, 2.0]})
    assert "2.000" in out


def test_custom_x_and_labels():
    out = line_chart(
        {"v": [0.5, 0.2]}, x=[2, 20], y_label="violation", x_label="alpha"
    )
    assert "violation" in out
    assert "alpha" in out
    assert "20" in out


@pytest.mark.parametrize(
    "series,err",
    [
        ({}, "at least one"),
        ({"a": [1, 2], "b": [1]}, "equal length"),
        ({"a": [1]}, "two points"),
        ({"a": [math.nan, math.nan]}, "NaN"),
    ],
)
def test_invalid_inputs(series, err):
    with pytest.raises(ValueError, match=err):
        line_chart(series)


def test_x_length_mismatch():
    with pytest.raises(ValueError, match="x length"):
        line_chart({"a": [1, 2]}, x=[1, 2, 3])
