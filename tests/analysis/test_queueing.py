"""Queueing formulas + the engine-vs-theory validation.

The FIFO engine serving a Poisson mix with deterministic per-model service
times is exactly an M/G/1 queue; Pollaczek–Khinchine must predict its mean
waiting time. This is the strongest single check on the event engine.
"""

import numpy as np
import pytest

from repro.analysis.queueing import (
    md1_mean_wait_ms,
    mg1_mean_wait_ms,
    mm1_mean_wait_ms,
    utilization,
)
from repro.errors import SimulationError
from repro.runtime.engine import SequentialEngine
from repro.scheduling.policies import FIFOScheduler
from repro.scheduling.request import Request, TaskSpec
from repro.utils.rng import rng_from


class TestFormulas:
    def test_utilization(self):
        assert utilization(0.05, 10.0) == pytest.approx(0.5)

    def test_md1_special_case_of_mg1(self):
        assert md1_mean_wait_ms(0.04, 10.0) == pytest.approx(
            mg1_mean_wait_ms(0.04, [10.0])
        )

    def test_md1_half_of_mm1(self):
        # Classic result: deterministic service halves the M/M/1 wait.
        lam, s = 0.05, 10.0
        assert md1_mean_wait_ms(lam, s) == pytest.approx(
            mm1_mean_wait_ms(lam, s) / 2.0
        )

    def test_overload_infinite(self):
        assert mg1_mean_wait_ms(0.2, [10.0]) == float("inf")
        assert mm1_mean_wait_ms(0.2, 10.0) == float("inf")

    def test_mixture_second_moment_matters(self):
        # Same mean service, higher variance => longer waits.
        uniform = mg1_mean_wait_ms(0.04, [10.0, 10.0])
        spread = mg1_mean_wait_ms(0.04, [2.0, 18.0])
        assert spread > uniform

    def test_bad_probabilities(self):
        with pytest.raises(SimulationError):
            mg1_mean_wait_ms(0.01, [1.0, 2.0], [0.9, 0.3])
        with pytest.raises(SimulationError):
            mg1_mean_wait_ms(0.01, [1.0, 2.0], [0.5])

    def test_empty_service(self):
        with pytest.raises(SimulationError):
            mg1_mean_wait_ms(0.01, [])


class TestEngineVsTheory:
    @pytest.mark.parametrize("lambda_ms", [120.0, 60.0, 40.0])
    def test_fifo_engine_matches_pollaczek_khinchine(self, lambda_ms):
        """Mean waiting time of the simulated FIFO queue vs M/G/1 theory.

        Two service classes (10 ms and 30 ms, equally likely), Poisson
        arrivals with mean gap ``lambda_ms``, 20k requests.
        """
        services = (10.0, 30.0)
        rng = rng_from(42, "mg1", lambda_ms)
        n = 20_000
        gaps = rng.exponential(lambda_ms, size=n)
        arrivals_t = np.cumsum(gaps)
        picks = rng.integers(0, 2, size=n)
        specs = [
            TaskSpec(name=f"m{s}", ext_ms=s, blocks_ms=(s,)) for s in services
        ]
        arrivals = [
            (float(t), Request(task=specs[int(k)], arrival_ms=float(t)))
            for t, k in zip(arrivals_t, picks)
        ]
        result = SequentialEngine(FIFOScheduler()).run(arrivals)
        waits = [
            r.first_start_ms - r.arrival_ms for r in result.completed
        ]
        simulated = float(np.mean(waits))
        theory = mg1_mean_wait_ms(1.0 / lambda_ms, services)
        assert simulated == pytest.approx(theory, rel=0.12), (
            f"lambda={lambda_ms}: sim {simulated:.2f} vs theory {theory:.2f}"
        )
