"""Device-parameter sensitivity of the splitting decision."""

import pytest

from repro.analysis.sensitivity import sweep_staging_bandwidth
from repro.hardware.presets import jetson_nano
from repro.zoo.registry import get_model


@pytest.fixture(scope="module")
def sweep():
    return sweep_staging_bandwidth(
        get_model("resnet50", cached=True),
        jetson_nano(),
        factors=(0.25, 1.0, 4.0),
        max_blocks=4,
    )


def test_point_per_factor(sweep):
    assert len(sweep.points) == 3
    assert sweep.model_name == "resnet50"


def test_cheaper_boundaries_never_reduce_block_count(sweep):
    """Scaling staging bandwidth up (and fixed cost down) can only make
    splitting more attractive."""
    counts = [p.optimal_blocks for p in sweep.points]
    assert counts == sorted(counts)


def test_expensive_boundaries_discourage_splitting(sweep):
    cheap = sweep.points[-1]
    expensive = sweep.points[0]
    assert cheap.optimal_blocks >= expensive.optimal_blocks


def test_overheads_fall_with_bandwidth(sweep):
    with_splits = [p for p in sweep.points if p.cuts]
    if len(with_splits) >= 2:
        assert with_splits[-1].overhead_fraction <= with_splits[0].overhead_fraction + 0.35


def test_block_count_range_and_cut_stability(sweep):
    lo, hi = sweep.block_count_range()
    assert 1 <= lo <= hi <= 4
    # cuts_stable is informational; just exercise it.
    assert isinstance(sweep.cuts_stable(), bool)
