"""Pareto frontier of splitting candidates."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.pareto import (
    ParetoPoint,
    distance_to_frontier,
    frontier_for_profile,
    pareto_frontier,
)
from repro.errors import SearchError
from repro.splitting.genetic import GAConfig, GeneticSplitter

from tests.conftest import make_profile


def pt(cuts, sigma, overhead):
    return ParetoPoint(cuts=tuple(cuts), sigma_ms=sigma, overhead_fraction=overhead)


class TestDominance:
    def test_strict_dominance(self):
        assert pt((1,), 1.0, 0.1).dominates(pt((2,), 2.0, 0.2))

    def test_partial_dominance(self):
        assert pt((1,), 1.0, 0.2).dominates(pt((2,), 1.0, 0.3))

    def test_incomparable(self):
        a, b = pt((1,), 1.0, 0.3), pt((2,), 2.0, 0.1)
        assert not a.dominates(b)
        assert not b.dominates(a)

    def test_equal_points_do_not_dominate(self):
        a, b = pt((1,), 1.0, 0.1), pt((2,), 1.0, 0.1)
        assert not a.dominates(b)


class TestFrontier:
    def test_simple_frontier(self):
        points = [
            pt((0,), 1.0, 0.5),
            pt((1,), 2.0, 0.3),
            pt((2,), 3.0, 0.1),
            pt((3,), 2.5, 0.4),  # dominated by (1,)
        ]
        frontier = pareto_frontier(points)
        assert [p.cuts for p in frontier] == [(0,), (1,), (2,)]

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0, max_value=10, allow_nan=False),
                st.floats(min_value=0, max_value=1, allow_nan=False),
            ),
            min_size=1,
            max_size=60,
        )
    )
    @settings(max_examples=80)
    def test_frontier_is_mutually_nondominated_and_complete(self, pairs):
        points = [pt((i,), s, o) for i, (s, o) in enumerate(pairs)]
        frontier = pareto_frontier(points)
        # No frontier point dominates another.
        for a in frontier:
            for b in frontier:
                assert not a.dominates(b)
        # Every excluded point is dominated or duplicates a frontier point.
        kept = {p.cuts for p in frontier}
        for p in points:
            if p.cuts in kept:
                continue
            assert any(
                f.dominates(p)
                or (f.sigma_ms == p.sigma_ms and f.overhead_fraction == p.overhead_fraction)
                for f in frontier
            )


class TestProfileFrontier:
    @pytest.fixture
    def profile(self):
        rng = np.random.default_rng(11)
        return make_profile(
            rng.uniform(0.5, 3.0, 20), cut_costs=rng.uniform(0.05, 0.6, 19)
        )

    def test_frontier_nonempty_and_sorted(self, profile):
        frontier = frontier_for_profile(profile, 2)
        assert frontier
        sigmas = [p.sigma_ms for p in frontier]
        assert sigmas == sorted(sigmas)
        overheads = [p.overhead_fraction for p in frontier]
        assert overheads == sorted(overheads, reverse=True)

    def test_candidate_limit(self, profile):
        with pytest.raises(SearchError):
            frontier_for_profile(profile, 3, max_candidates=10)

    def test_ga_pick_near_frontier(self, profile):
        """The GA's Eq.-2 scalarisation should land on/near the frontier."""
        frontier = frontier_for_profile(profile, 2)
        ga = GeneticSplitter(GAConfig(seed=0)).search(profile, 2)
        point = pt(ga.cuts, ga.sigma_ms, ga.overhead_fraction)
        d = distance_to_frontier(point, frontier, sigma_scale=profile.total_ms)
        assert d < 0.05

    def test_real_model_ga_on_frontier(self, resnet_profile):
        frontier = frontier_for_profile(resnet_profile, 2)
        ga = GeneticSplitter(GAConfig(seed=0)).search(resnet_profile, 2)
        point = pt(ga.cuts, ga.sigma_ms, ga.overhead_fraction)
        d = distance_to_frontier(
            point, frontier, sigma_scale=resnet_profile.total_ms
        )
        assert d < 0.02

    def test_distance_zero_for_frontier_member(self, profile):
        frontier = frontier_for_profile(profile, 2)
        assert (
            distance_to_frontier(frontier[0], frontier, profile.total_ms) == 0.0
        )

    def test_empty_frontier_rejected(self):
        with pytest.raises(SearchError):
            distance_to_frontier(pt((0,), 1, 0.1), [], 10.0)
