"""DeviceSpec validation and presets."""

import dataclasses

import pytest

from repro.hardware.presets import desktop_gpu, jetson_nano, jetson_xavier
from repro.types import OpType


def test_presets_construct():
    for factory in (jetson_nano, jetson_xavier, desktop_gpu):
        dev = factory()
        assert dev.peak_flops > 0
        assert dev.staging_bandwidth < dev.mem_bandwidth


def test_preset_names_unique():
    names = {f().name for f in (jetson_nano, jetson_xavier, desktop_gpu)}
    assert len(names) == 3


def test_efficiency_for_listed_and_default():
    dev = jetson_nano()
    assert dev.efficiency_for(OpType.CONV) == 0.55
    assert dev.efficiency_for(OpType.SOFTMAX) == dev.default_compute_efficiency


@pytest.mark.parametrize(
    "field,value,match",
    [
        ("peak_flops", 0.0, "positive"),
        ("mem_bandwidth", -1.0, "positive"),
        ("staging_bandwidth", 0.0, "positive"),
        ("kernel_launch_ms", -0.1, "non-negative"),
        ("block_overhead_ms", -1.0, "non-negative"),
        ("contention_gamma", -0.5, ">= 0"),
        ("max_streams", 0, ">= 1"),
        ("rta_overlap_gain", -0.1, ">= 0"),
    ],
)
def test_invalid_fields_rejected(field, value, match):
    with pytest.raises(ValueError, match=match):
        dataclasses.replace(jetson_nano(), **{field: value})


def test_xavier_faster_than_nano():
    nano, xavier = jetson_nano(), jetson_xavier()
    assert xavier.peak_flops > nano.peak_flops
    assert xavier.kernel_launch_ms < nano.kernel_launch_ms
