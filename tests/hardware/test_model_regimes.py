"""Latency-model fidelity across the zoo: regime classification and the
structural properties the splitting observations rest on."""

import numpy as np
import pytest

from repro.hardware.latency import LatencyModel
from repro.hardware.presets import jetson_nano
from repro.types import OpType
from repro.zoo.registry import EVALUATED_MODELS, get_model


@pytest.fixture(scope="module")
def lm():
    return LatencyModel(jetson_nano())


def test_elementwise_ops_memory_bound(lm):
    """ReLUs on CNN activations must sit on the memory roof, not compute."""
    g = get_model("vgg19", cached=True)
    dev = lm.device
    for op in g:
        if op.op_type is OpType.RELU:
            t = lm.op_latency_ms(op)
            mem_ms = op.memory_bytes / (
                dev.mem_bandwidth * dev.memory_efficiency
            ) * 1e3
            assert t == pytest.approx(dev.kernel_launch_ms + mem_ms)


def test_big_convs_compute_bound(lm):
    """VGG's 3x3/512-channel convolutions must sit on the compute roof."""
    g = get_model("vgg19", cached=True)
    dev = lm.device
    heavy = [
        op for op in g if op.op_type is OpType.CONV and op.flops > 1e9
    ]
    assert heavy
    for op in heavy:
        t = lm.op_latency_ms(op)
        compute_ms = op.flops / (dev.peak_flops * dev.efficiency_for(op.op_type)) * 1e3
        assert t == pytest.approx(dev.kernel_launch_ms + compute_ms)


@pytest.mark.parametrize("name", EVALUATED_MODELS)
def test_conv_models_not_back_loaded_in_time(lm, name):
    """§2.4: per-op time is front-loaded (or at worst uniform) for the
    CNNs. VGG/ResNet/GoogLeNet are clearly front-heavy; YOLOv2's darknet
    doubles channels exactly when it halves resolution, which makes its
    per-layer cost nearly uniform (front share ~0.5); GPT-2's blocks are
    uniform by construction."""
    if name == "gpt2":
        pytest.skip("transformer blocks are uniform by construction")
    g = get_model(name, cached=True)
    times = lm.calibrated_profile(g)
    half = len(times) // 2
    front_share = times[:half].sum() / times.sum()
    assert front_share > 0.45
    if name in ("vgg19", "resnet50", "googlenet"):
        assert front_share > 0.5


def test_gpt2_metadata_ops_are_cheap(lm):
    """The 700+ scaffold ops of the GPT-2 export must contribute almost
    nothing to its latency (else splitting positions would be distorted)."""
    g = get_model("gpt2", cached=True)
    times = lm.calibrated_profile(g)
    scaffold_time = sum(
        t for t, op in zip(times, g.operators) if op.op_type.is_reshaping
    )
    assert scaffold_time < 0.05 * times.sum()


@pytest.mark.parametrize("name", EVALUATED_MODELS)
def test_no_zero_or_negative_latencies(lm, name):
    g = get_model(name, cached=True)
    times = lm.calibrated_profile(g)
    assert (times > 0).all()


def test_per_model_dominant_op_share(lm):
    """Convolutions / matmuls must dominate the runtime. GPT-2's
    fine-grained export spends real memory traffic on the per-head slices,
    so its dense share is lower but still the largest contributor."""
    for name, kinds, floor in (
        ("resnet50", (OpType.CONV,), 0.7),
        ("vgg19", (OpType.CONV, OpType.GEMM), 0.8),
        ("gpt2", (OpType.GEMM, OpType.MATMUL), 0.4),
    ):
        g = get_model(name, cached=True)
        times = lm.calibrated_profile(g)
        share = sum(
            t for t, op in zip(times, g.operators) if op.op_type in kinds
        ) / times.sum()
        assert share > floor, (name, share)


def test_crossing_bytes_finite_and_positive_somewhere():
    for name in EVALUATED_MODELS:
        g = get_model(name, cached=True)
        profile = g.crossing_bytes_profile()
        assert (profile >= 0).all()
        assert profile.max() > 0
