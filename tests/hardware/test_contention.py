"""Contention and alignment throughput curves."""

import dataclasses

import pytest

from repro.hardware.contention import ContentionModel
from repro.hardware.presets import jetson_nano


@pytest.fixture(scope="module")
def cm():
    return ContentionModel(jetson_nano())


def test_single_request_full_rate(cm):
    assert cm.aggregate_efficiency(1) == 1.0
    assert cm.per_request_rate(1) == 1.0
    assert cm.slowdown(1) == 1.0


def test_aggregate_efficiency_decreases(cm):
    effs = [cm.aggregate_efficiency(n) for n in range(1, 6)]
    assert all(a >= b for a, b in zip(effs, effs[1:]))
    assert effs[-1] < 1.0


def test_per_request_rate_decreases(cm):
    rates = [cm.per_request_rate(n) for n in range(1, 6)]
    assert all(a > b for a, b in zip(rates, rates[1:]))


def test_slowdown_exceeds_n(cm):
    # Sharing among n plus contention: slowdown > n for n > 1.
    assert cm.slowdown(3) > 3.0


def test_zero_active(cm):
    assert cm.per_request_rate(0) == 0.0
    assert cm.slowdown(0) == float("inf")


def test_aligned_efficiency_beats_serial(cm):
    assert cm.aligned_efficiency(1) == 1.0
    for n in (2, 3, 4):
        assert 1.0 < cm.aligned_efficiency(n) <= 1.0 + cm.device.rta_overlap_gain


def test_aligned_efficiency_saturates(cm):
    e4 = cm.aligned_efficiency(4)
    e100 = cm.aligned_efficiency(100)
    assert e100 > e4
    assert e100 < 1.0 + cm.device.rta_overlap_gain + 1e-9


def test_aligned_rate_still_shares(cm):
    # Even with alignment gain, each request progresses slower than alone.
    assert cm.aligned_rate(2) < 1.0


def test_gamma_zero_is_pure_processor_sharing():
    dev = dataclasses.replace(jetson_nano(), contention_gamma=0.0)
    cm = ContentionModel(dev)
    assert cm.aggregate_efficiency(5) == 1.0
    assert cm.per_request_rate(5) == pytest.approx(0.2)
