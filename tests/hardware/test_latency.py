"""Roofline latency model and Table-1 calibration."""

import numpy as np
import pytest

from repro.errors import CalibrationError
from repro.graphs.operator import Operator
from repro.graphs.tensor import TensorSpec
from repro.hardware.latency import LatencyModel
from repro.hardware.presets import jetson_nano
from repro.types import OpType
from repro.zoo.registry import EVALUATED_MODELS, get_model


@pytest.fixture(scope="module")
def lm():
    return LatencyModel(jetson_nano())


def _op(op_type=OpType.CONV, flops=1e9, in_bytes=1000, out_bytes=1000, params=0):
    n_in = max(1, in_bytes // 4)
    n_out = max(1, out_bytes // 4)
    return Operator(
        name="op",
        op_type=op_type,
        inputs=(TensorSpec("i", (n_in,)),),
        outputs=(TensorSpec("o", (n_out,)),),
        flops=flops,
        param_bytes=params,
    )


def test_compute_bound_scales_with_flops(lm):
    t1 = lm.op_latency_ms(_op(flops=1e9))
    t2 = lm.op_latency_ms(_op(flops=2e9))
    assert t2 > t1
    # Twice the FLOPs roughly doubles time minus the fixed launch cost.
    launch = lm.device.kernel_launch_ms
    assert (t2 - launch) == pytest.approx(2 * (t1 - launch), rel=1e-6)


def test_memory_bound_op_ignores_small_flops(lm):
    # An elementwise op with huge tensors: memory roof dominates.
    big = _op(op_type=OpType.RELU, flops=10.0, in_bytes=40_000_000, out_bytes=40_000_000)
    t = lm.op_latency_ms(big)
    mem_ms = big.memory_bytes / (
        lm.device.mem_bandwidth * lm.device.memory_efficiency
    ) * 1e3
    assert t == pytest.approx(lm.device.kernel_launch_ms + mem_ms)


def test_metadata_op_costs_constant(lm):
    t = lm.op_latency_ms(_op(op_type=OpType.RESHAPE, flops=0.0))
    assert t == lm.device.metadata_op_ms


def test_launch_overhead_floor(lm):
    tiny = _op(flops=1.0, in_bytes=4, out_bytes=4)
    assert lm.op_latency_ms(tiny) >= lm.device.kernel_launch_ms


@pytest.mark.parametrize("name", EVALUATED_MODELS)
def test_calibration_hits_paper_latency(lm, name):
    g = get_model(name, cached=True)
    total = lm.calibrated_profile(g).sum()
    assert total == pytest.approx(g.metadata["paper_latency_ms"], rel=1e-9)


def test_calibration_preserves_ratios(lm):
    g = get_model("resnet50", cached=True)
    raw = lm.profile_graph(g)
    cal = lm.calibrated_profile(g)
    np.testing.assert_allclose(cal / cal.sum(), raw / raw.sum(), rtol=1e-12)


def test_uncalibrated_model_returns_raw(lm):
    g = get_model("mobilenetv2", cached=True)  # no paper latency
    raw = lm.profile_graph(g)
    np.testing.assert_array_equal(lm.calibrated_profile(g), raw)


def test_explicit_target_overrides_metadata(lm):
    g = get_model("resnet50", cached=True)
    assert lm.calibrated_profile(g, 100.0).sum() == pytest.approx(100.0)


def test_bad_target_rejected(lm):
    g = get_model("resnet50", cached=True)
    with pytest.raises(CalibrationError, match="positive"):
        lm.calibrated_profile(g, -5.0)


def test_depthwise_less_efficient_than_dense(lm):
    dense = _op(op_type=OpType.CONV, flops=1e9)
    dw = _op(op_type=OpType.DEPTHWISE_CONV, flops=1e9)
    assert lm.op_latency_ms(dw) > lm.op_latency_ms(dense)
