"""Cut-boundary transfer cost model."""

import numpy as np
import pytest

from repro.hardware.presets import jetson_nano
from repro.hardware.transfer import TransferModel


@pytest.fixture(scope="module")
def tm():
    return TransferModel(jetson_nano())


def test_zero_bytes_costs_fixed_overhead(tm):
    assert tm.cut_cost_ms(0) == tm.device.block_overhead_ms


def test_cost_linear_in_bytes(tm):
    fixed = tm.device.block_overhead_ms
    c1 = tm.cut_cost_ms(1_000_000) - fixed
    c2 = tm.cut_cost_ms(2_000_000) - fixed
    assert c2 == pytest.approx(2 * c1)


def test_round_trip_staging(tm):
    # 2 GB/s staging, 1 MB crossing: out + back = 2 MB -> 1 ms.
    assert tm.cut_cost_ms(1_000_000) == pytest.approx(
        tm.device.block_overhead_ms + 1.0
    )


def test_profile_matches_pointwise(tm):
    bytes_profile = np.array([0, 1000, 10_000_000, 123456])
    profile = tm.cut_cost_profile(bytes_profile)
    for b, c in zip(bytes_profile, profile):
        assert c == pytest.approx(tm.cut_cost_ms(int(b)))


def test_profile_empty(tm):
    assert tm.cut_cost_profile(np.zeros(0, dtype=np.int64)).size == 0
