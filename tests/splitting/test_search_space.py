"""Candidate counting, enumeration, and guided sampling."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SearchError
from repro.splitting.search_space import (
    _repair_row,
    count_candidates,
    enumerate_cuts,
    sample_cuts_observation_guided,
    sample_cuts_uniform,
)

from tests.conftest import make_profile


class TestCounting:
    def test_formula(self):
        # Paper §2.2: dividing M ops into N blocks has C(M-1, N-1) options.
        assert count_candidates(122, 3) == math.comb(121, 2)

    def test_degenerate(self):
        assert count_candidates(5, 1) == 1
        assert count_candidates(5, 5) == 1
        assert count_candidates(5, 6) == 0

    def test_invalid(self):
        with pytest.raises(SearchError):
            count_candidates(0, 1)

    def test_enumeration_matches_count(self):
        cands = list(enumerate_cuts(8, 3))
        assert len(cands) == count_candidates(8, 3)
        assert len(set(cands)) == len(cands)
        for c in cands:
            assert list(c) == sorted(c)
            assert all(0 <= x <= 6 for x in c)

    def test_strided_enumeration(self):
        cands = list(enumerate_cuts(10, 2, stride=3))
        assert all(c[0] % 3 == 0 for c in cands)

    def test_bad_stride(self):
        with pytest.raises(SearchError):
            list(enumerate_cuts(10, 2, stride=0))


class TestSampling:
    def test_uniform_shape_and_validity(self):
        rng = np.random.default_rng(0)
        pop = sample_cuts_uniform(rng, 20, 4, 50)
        assert pop.shape == (50, 3)
        for row in pop:
            assert len(set(row.tolist())) == 3
            assert (np.diff(row) > 0).all()
            assert row.min() >= 0 and row.max() <= 18

    def test_uniform_zero_cuts(self):
        rng = np.random.default_rng(0)
        assert sample_cuts_uniform(rng, 10, 1, 5).shape == (5, 0)

    def test_uniform_too_many_cuts(self):
        rng = np.random.default_rng(0)
        with pytest.raises(SearchError):
            sample_cuts_uniform(rng, 3, 5, 1)

    def test_guided_valid_and_biased(self):
        """Guided samples should sit near time-even positions."""
        # Front-loaded profile: first ops are slow, like a CNN.
        times = np.concatenate([np.full(10, 5.0), np.full(30, 1.0)])
        profile = make_profile(times)
        rng = np.random.default_rng(1)
        pop = sample_cuts_observation_guided(rng, profile, 2, 200)
        assert pop.shape == (200, 1)
        # Time midpoint 40ms falls at op index 7 (8*5=40), far left of the
        # operator midpoint 20 -> guided cuts average well below 20.
        assert pop.mean() < 15
        for row in pop:
            assert 0 <= row[0] <= profile.n_ops - 2

    def test_guided_multiple_cuts_sorted_unique(self):
        profile = make_profile(np.ones(30))
        rng = np.random.default_rng(2)
        pop = sample_cuts_observation_guided(rng, profile, 5, 100)
        for row in pop:
            assert (np.diff(row) > 0).all()


class TestRepair:
    @given(
        st.lists(st.integers(-5, 30), min_size=1, max_size=8),
        st.integers(min_value=10, max_value=40),
    )
    @settings(max_examples=100)
    def test_repair_row_invariants(self, raw, n_ops):
        if len(raw) > n_ops - 1:
            return  # not enough positions to host the cuts
        rng = np.random.default_rng(0)
        row = _repair_row(rng, np.asarray(raw, dtype=np.int64), n_ops)
        assert len(row) == len(raw)
        assert (np.diff(row) > 0).all() if len(row) > 1 else True
        assert row.min() >= 0
        assert row.max() <= n_ops - 2

    def test_repair_preserves_valid_rows(self):
        rng = np.random.default_rng(0)
        row = np.array([1, 4, 7])
        out = _repair_row(rng, row.copy(), 20)
        np.testing.assert_array_equal(out, row)
