"""Elastic splitting policy (§3.3)."""

import pytest

from repro.errors import SearchError
from repro.splitting.elastic import ElasticPolicy, ElasticSplitConfig, QueueSnapshot


def snap(*types: str) -> QueueSnapshot:
    return QueueSnapshot.from_types(list(types))


def test_light_mixed_queue_splits():
    policy = ElasticPolicy()
    assert policy.should_split(snap("a", "b", "a"))
    assert policy.suspensions == 0


def test_deep_queue_suspends():
    policy = ElasticPolicy(ElasticSplitConfig(max_queue_depth=3))
    assert not policy.should_split(snap("a", "b", "c", "d"))
    assert policy.suspensions == 1


def test_depth_boundary_inclusive():
    policy = ElasticPolicy(ElasticSplitConfig(max_queue_depth=3))
    assert policy.should_split(snap("a", "b", "c"))  # == threshold: still on


def test_homogeneous_queue_suspends():
    policy = ElasticPolicy(
        ElasticSplitConfig(same_type_fraction=0.8, same_type_min_queue=3)
    )
    assert not policy.should_split(snap("a", "a", "a", "a"))


def test_dominant_fraction_threshold():
    policy = ElasticPolicy(
        ElasticSplitConfig(same_type_fraction=0.8, same_type_min_queue=3)
    )
    # 3 of 4 = 0.75 < 0.8 -> keep splitting.
    assert policy.should_split(snap("a", "a", "a", "b"))
    # 4 of 5 = 0.8 >= 0.8 -> suspend.
    assert not policy.should_split(snap("a", "a", "a", "a", "b"))


def test_tiny_queue_never_homogeneous_suspended():
    policy = ElasticPolicy(ElasticSplitConfig(same_type_min_queue=3))
    assert policy.should_split(snap("a", "a"))


def test_empty_queue_splits():
    policy = ElasticPolicy()
    assert policy.should_split(snap())


def test_disabled_policy_always_splits():
    policy = ElasticPolicy(ElasticSplitConfig(enabled=False, max_queue_depth=1))
    assert policy.should_split(snap(*["a"] * 50))
    assert policy.suspensions == 0


class TestConfigValidation:
    """Nonsensical thresholds must be rejected at construction."""

    def test_defaults_valid(self):
        ElasticSplitConfig()

    @pytest.mark.parametrize("depth", [0, -1, -100])
    def test_max_queue_depth_below_one(self, depth):
        with pytest.raises(SearchError, match="max_queue_depth"):
            ElasticSplitConfig(max_queue_depth=depth)

    @pytest.mark.parametrize("fraction", [0.0, -0.5, 1.2, 2.0])
    def test_same_type_fraction_outside_unit_interval(self, fraction):
        with pytest.raises(SearchError, match="same_type_fraction"):
            ElasticSplitConfig(same_type_fraction=fraction)

    def test_fraction_of_one_allowed(self):
        ElasticSplitConfig(same_type_fraction=1.0)

    @pytest.mark.parametrize("min_queue", [0, -3])
    def test_same_type_min_queue_below_one(self, min_queue):
        with pytest.raises(SearchError, match="same_type_min_queue"):
            ElasticSplitConfig(same_type_min_queue=min_queue)

    def test_invalid_even_when_disabled(self):
        # Validation is structural, not conditional on `enabled`.
        with pytest.raises(SearchError):
            ElasticSplitConfig(enabled=False, max_queue_depth=0)


def test_snapshot_counts():
    s = snap("a", "b", "a")
    assert s.depth == 3
    assert s.type_counts == {"a": 2, "b": 1}
