"""Elastic splitting policy (§3.3)."""

from repro.splitting.elastic import ElasticPolicy, ElasticSplitConfig, QueueSnapshot


def snap(*types: str) -> QueueSnapshot:
    return QueueSnapshot.from_types(list(types))


def test_light_mixed_queue_splits():
    policy = ElasticPolicy()
    assert policy.should_split(snap("a", "b", "a"))
    assert policy.suspensions == 0


def test_deep_queue_suspends():
    policy = ElasticPolicy(ElasticSplitConfig(max_queue_depth=3))
    assert not policy.should_split(snap("a", "b", "c", "d"))
    assert policy.suspensions == 1


def test_depth_boundary_inclusive():
    policy = ElasticPolicy(ElasticSplitConfig(max_queue_depth=3))
    assert policy.should_split(snap("a", "b", "c"))  # == threshold: still on


def test_homogeneous_queue_suspends():
    policy = ElasticPolicy(
        ElasticSplitConfig(same_type_fraction=0.8, same_type_min_queue=3)
    )
    assert not policy.should_split(snap("a", "a", "a", "a"))


def test_dominant_fraction_threshold():
    policy = ElasticPolicy(
        ElasticSplitConfig(same_type_fraction=0.8, same_type_min_queue=3)
    )
    # 3 of 4 = 0.75 < 0.8 -> keep splitting.
    assert policy.should_split(snap("a", "a", "a", "b"))
    # 4 of 5 = 0.8 >= 0.8 -> suspend.
    assert not policy.should_split(snap("a", "a", "a", "a", "b"))


def test_tiny_queue_never_homogeneous_suspended():
    policy = ElasticPolicy(ElasticSplitConfig(same_type_min_queue=3))
    assert policy.should_split(snap("a", "a"))


def test_empty_queue_splits():
    policy = ElasticPolicy()
    assert policy.should_split(snap())


def test_disabled_policy_always_splits():
    policy = ElasticPolicy(ElasticSplitConfig(enabled=False, max_queue_depth=0))
    assert policy.should_split(snap(*["a"] * 50))
    assert policy.suspensions == 0


def test_snapshot_counts():
    s = snap("a", "b", "a")
    assert s.depth == 3
    assert s.type_counts == {"a": 2, "b": 1}
