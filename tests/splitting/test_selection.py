"""Block-count selection via the Eq.-1 score."""

import pytest

from repro.splitting.genetic import GAConfig
from repro.splitting.metrics import expected_waiting_latency_ms
from repro.splitting.selection import choose_block_count, score_split_ms

from tests.conftest import make_profile


def test_score_vanilla_is_half_latency():
    assert score_split_ms([30.0], 30.0) == 15.0


def test_score_penalises_overhead():
    # Two even 16ms blocks of a 30ms model: wait 8 + overhead 2 = 10.
    assert score_split_ms([16.0, 16.0], 30.0) == pytest.approx(10.0)


def test_free_splitting_always_wins():
    """With zero cut cost, splitting strictly reduces the score."""
    profile = make_profile([5.0] * 12)
    choice = choose_block_count(profile, max_blocks=4, config=GAConfig(seed=0))
    assert choice.n_blocks == 4  # more free blocks keep shrinking E[wait]
    assert choice.result is not None


def test_expensive_splitting_stays_vanilla():
    profile = make_profile([5.0] * 12, cut_costs=[50.0] * 11)
    choice = choose_block_count(profile, max_blocks=4, config=GAConfig(seed=0))
    assert choice.n_blocks == 1
    assert choice.result is None


def test_scores_cover_all_counts():
    profile = make_profile([5.0] * 12, cut_costs=[1.0] * 11)
    choice = choose_block_count(profile, max_blocks=4, config=GAConfig(seed=0))
    assert set(choice.scores_ms) == {1, 2, 3, 4}
    assert choice.score_ms == min(choice.scores_ms.values())


def test_real_models_choose_small_counts(resnet_profile, vgg_profile):
    """Paper: optimal counts are small (2 for ResNet50, 3 for VGG19)."""
    for profile in (resnet_profile, vgg_profile):
        choice = choose_block_count(profile, max_blocks=5, config=GAConfig(seed=0))
        assert 2 <= choice.n_blocks <= 3
        # Splitting must beat staying vanilla for the long models.
        assert choice.scores_ms[choice.n_blocks] < choice.scores_ms[1]


def test_consistency_of_winner_score():
    profile = make_profile([2.0] * 10, cut_costs=[0.2] * 9)
    choice = choose_block_count(profile, max_blocks=3, config=GAConfig(seed=0))
    if choice.result is not None:
        recomputed = score_split_ms(
            choice.result.partition.block_times_ms, profile.total_ms
        )
        assert choice.score_ms == pytest.approx(recomputed)
    else:
        assert choice.score_ms == pytest.approx(
            expected_waiting_latency_ms([profile.total_ms])
        )
