"""GA vs exhaustive ground truth on randomly generated profiles.

The targeted GA tests use fixed seeds; this property test sweeps random
op-time/cut-cost landscapes (front-loaded, back-loaded, spiky, flat) and
requires the GA to stay within a small margin of the global optimum.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.splitting.exhaustive import ExhaustiveSplitter
from repro.splitting.genetic import GAConfig, GeneticSplitter

from tests.conftest import make_profile


@st.composite
def random_landscape(draw):
    n_ops = draw(st.integers(8, 22))
    shape = draw(st.sampled_from(["flat", "front", "back", "spiky"]))
    rng = np.random.default_rng(draw(st.integers(0, 2**16)))
    if shape == "flat":
        times = rng.uniform(0.8, 1.2, n_ops)
    elif shape == "front":
        times = np.linspace(3.0, 0.5, n_ops) * rng.uniform(0.8, 1.2, n_ops)
    elif shape == "back":
        times = np.linspace(0.5, 3.0, n_ops) * rng.uniform(0.8, 1.2, n_ops)
    else:  # spiky
        times = rng.uniform(0.2, 0.6, n_ops)
        spikes = rng.choice(n_ops, size=max(1, n_ops // 5), replace=False)
        times[spikes] += rng.uniform(3.0, 6.0, len(spikes))
    costs = rng.uniform(0.02, 0.5, n_ops - 1)
    return make_profile(times, cut_costs=costs)


@given(random_landscape(), st.integers(2, 3))
@settings(max_examples=40, deadline=None)
def test_ga_within_margin_of_exhaustive(profile, n_blocks):
    ga = GeneticSplitter(GAConfig(seed=0, generations=40)).search(
        profile, n_blocks
    )
    ex = ExhaustiveSplitter().search(profile, n_blocks)
    # Fitness is negative; allow a 5% relative slack on arbitrary
    # landscapes (fixed-seed tests require exact optimum on the real ones).
    assert ga.fitness >= ex.fitness * 1.05
    assert len(ga.cuts) == n_blocks - 1


@given(random_landscape())
@settings(max_examples=25, deadline=None)
def test_ga_split_always_beats_random_average(profile):
    """The GA's split must beat the average random split's fitness."""
    from repro.splitting.exhaustive import evaluate_cut_matrix
    from repro.splitting.fitness import fitness
    from repro.splitting.search_space import sample_cuts_uniform

    rng = np.random.default_rng(1)
    pop = sample_cuts_uniform(rng, profile.n_ops, 3, 64)
    sigma, overhead = evaluate_cut_matrix(profile, pop)
    random_mean = float(
        np.mean(fitness(sigma, profile.total_ms, overhead, 3))
    )
    ga = GeneticSplitter(GAConfig(seed=0)).search(profile, 3)
    assert ga.fitness >= random_mean
