"""Eq. 2 fitness properties."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.splitting.fitness import fitness, fitness_components

pos = st.floats(min_value=0.0, max_value=100.0, allow_nan=False)


def test_maximum_at_zero_penalties():
    # sigma = 0, overhead = 0 gives -(e^-1 + e^-1) = -2/e.
    assert fitness(0.0, 10.0, 0.0, 2) == pytest.approx(-2.0 / np.e)


def test_monotone_in_sigma():
    assert fitness(1.0, 10.0, 0.1, 2) > fitness(2.0, 10.0, 0.1, 2)


def test_monotone_in_overhead():
    assert fitness(1.0, 10.0, 0.1, 2) > fitness(1.0, 10.0, 0.5, 2)


def test_more_blocks_soften_overhead_penalty():
    # Eq. 2 divides overhead by m.
    assert fitness(1.0, 10.0, 0.5, 4) > fitness(1.0, 10.0, 0.5, 2)


def test_vectorised_matches_scalar():
    sigmas = np.array([0.5, 1.0, 2.0])
    overheads = np.array([0.1, 0.2, 0.3])
    vec = fitness(sigmas, 10.0, overheads, 3)
    for i in range(3):
        assert vec[i] == pytest.approx(
            fitness(float(sigmas[i]), 10.0, float(overheads[i]), 3)
        )


@given(pos, pos)
def test_always_negative(sigma, overhead):
    assert fitness(sigma, 50.0, overhead, 3) < 0


def test_components_sum_to_fitness():
    c = fitness_components(1.5, 20.0, 0.25, 3)
    assert c["fitness"] == pytest.approx(
        -(c["evenness_term"] + c["overhead_term"])
    )
    assert c["fitness"] == pytest.approx(fitness(1.5, 20.0, 0.25, 3))
