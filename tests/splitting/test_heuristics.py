"""Alternative splitters: balanced heuristic and simulated annealing."""

import numpy as np
import pytest

from repro.errors import SearchError
from repro.splitting.exhaustive import ExhaustiveSplitter
from repro.splitting.heuristics import (
    AnnealingConfig,
    AnnealingSplitter,
    balanced_split,
)

from tests.conftest import make_profile


@pytest.fixture
def profile():
    rng = np.random.default_rng(21)
    return make_profile(
        rng.uniform(0.5, 3.0, 26), cut_costs=rng.uniform(0.05, 0.4, 25)
    )


class TestBalanced:
    def test_valid_partition(self, profile):
        r = balanced_split(profile, 3)
        assert r.partition.n_blocks == 3
        assert r.evaluations >= 1

    def test_near_optimal_on_smooth_landscape(self, profile):
        bal = balanced_split(profile, 2)
        ex = ExhaustiveSplitter().search(profile, 2)
        assert bal.fitness >= ex.fitness * 1.05  # within 5% (negative scale)

    def test_matches_exhaustive_on_real_model(self, resnet_profile):
        bal = balanced_split(resnet_profile, 3)
        ex = ExhaustiveSplitter().search(resnet_profile, 3)
        assert bal.fitness == pytest.approx(ex.fitness, rel=1e-6)

    def test_rejects_single_block(self, profile):
        with pytest.raises(SearchError):
            balanced_split(profile, 1)

    def test_rejects_oversplit(self):
        p = make_profile([1.0, 2.0])
        with pytest.raises(SearchError):
            balanced_split(p, 4)


class TestAnnealing:
    def test_valid_and_deterministic(self, profile):
        a = AnnealingSplitter(AnnealingConfig(seed=3)).search(profile, 3)
        b = AnnealingSplitter(AnnealingConfig(seed=3)).search(profile, 3)
        assert a.cuts == b.cuts
        assert a.fitness == b.fitness

    def test_near_optimal(self, profile):
        ann = AnnealingSplitter(AnnealingConfig(seed=0)).search(profile, 3)
        ex = ExhaustiveSplitter().search(profile, 3)
        assert ann.fitness >= ex.fitness * 1.03

    def test_matches_exhaustive_on_real_model(self, vgg_profile):
        ann = AnnealingSplitter(AnnealingConfig(seed=0)).search(vgg_profile, 3)
        ex = ExhaustiveSplitter().search(vgg_profile, 3)
        assert ann.fitness >= ex.fitness * 1.01

    def test_invalid_config(self):
        with pytest.raises(SearchError):
            AnnealingConfig(iterations=0)
        with pytest.raises(SearchError):
            AnnealingConfig(cooling=1.5)
        with pytest.raises(SearchError):
            AnnealingConfig(initial_temperature=0.0)

    def test_rejects_single_block(self, profile):
        with pytest.raises(SearchError):
            AnnealingSplitter().search(profile, 1)


def test_all_methods_agree_on_smooth_landscapes(resnet_profile):
    """GA, annealing, balanced hill-climbing and exhaustive search land on
    the same optimum for the real model — the objective, not the
    optimiser, determines the split."""
    from repro.splitting.genetic import GAConfig, GeneticSplitter

    ga = GeneticSplitter(GAConfig(seed=0)).search(resnet_profile, 3)
    bal = balanced_split(resnet_profile, 3)
    ann = AnnealingSplitter(AnnealingConfig(seed=0)).search(resnet_profile, 3)
    ex = ExhaustiveSplitter().search(resnet_profile, 3)
    assert ga.cuts == bal.cuts == ann.cuts == ex.partition.cuts
