"""Exhaustive search ground truth and the vectorised evaluator."""

import numpy as np
import pytest

from repro.errors import SearchError
from repro.splitting.exhaustive import ExhaustiveSplitter, evaluate_cut_matrix
from repro.splitting.fitness import fitness
from repro.splitting.metrics import block_std_ms
from repro.splitting.search_space import enumerate_cuts

from tests.conftest import make_profile


@pytest.fixture
def profile():
    rng = np.random.default_rng(3)
    times = rng.uniform(0.5, 3.0, size=18)
    costs = rng.uniform(0.1, 0.8, size=17)
    return make_profile(times, cut_costs=costs)


def brute_force_best(profile, m):
    best = (-np.inf, None)
    for cuts in enumerate_cuts(profile.n_ops, m):
        times = profile.block_times_for_cuts(cuts)
        sigma = float(np.std(times))
        overhead = sum(profile.cut_cost_ms[c] for c in cuts) / profile.total_ms
        f = fitness(sigma, profile.total_ms, overhead, m)
        if f > best[0]:
            best = (f, cuts)
    return best


@pytest.mark.parametrize("m", [2, 3])
def test_matches_python_brute_force(profile, m):
    result = ExhaustiveSplitter().search(profile, m)
    expected_fit, expected_cuts = brute_force_best(profile, m)
    assert result.fitness == pytest.approx(expected_fit)
    assert result.partition.cuts == expected_cuts


def test_counts_all_candidates(profile):
    result = ExhaustiveSplitter().search(profile, 3)
    from repro.splitting.search_space import count_candidates

    assert result.candidates_evaluated == count_candidates(profile.n_ops, 3)


def test_candidate_limit_enforced(profile):
    with pytest.raises(SearchError, match="exceed"):
        ExhaustiveSplitter(max_candidates=5).search(profile, 3)


def test_needs_two_blocks(profile):
    with pytest.raises(SearchError):
        ExhaustiveSplitter().search(profile, 1)


def test_stride_reduces_work(profile):
    full = ExhaustiveSplitter().search(profile, 2)
    strided = ExhaustiveSplitter().search(profile, 2, stride=3)
    assert strided.candidates_evaluated < full.candidates_evaluated
    assert strided.fitness <= full.fitness + 1e-12


class TestEvaluateCutMatrix:
    def test_matches_block_times_for_cuts(self, profile):
        cuts = np.array([[2, 7], [0, 16], [5, 11]])
        sigma, overhead = evaluate_cut_matrix(profile, cuts)
        for i, row in enumerate(cuts):
            times = profile.block_times_for_cuts(tuple(row))
            assert sigma[i] == pytest.approx(block_std_ms(times))
            expected_ov = sum(profile.cut_cost_ms[c] for c in row) / profile.total_ms
            assert overhead[i] == pytest.approx(expected_ov)

    def test_single_cut_matrix(self, profile):
        cuts = np.array([[4], [9]])
        sigma, overhead = evaluate_cut_matrix(profile, cuts)
        assert sigma.shape == (2,)
        assert (overhead > 0).all()
