"""GA behaviour: determinism, convergence, optimality, history."""

import numpy as np
import pytest

from repro.errors import SearchError
from repro.splitting.exhaustive import ExhaustiveSplitter
from repro.splitting.genetic import GAConfig, GeneticSplitter

from tests.conftest import make_profile


@pytest.fixture
def small_profile():
    rng = np.random.default_rng(7)
    times = rng.uniform(0.5, 4.0, size=24)
    costs = rng.uniform(0.05, 0.5, size=23)
    return make_profile(times, cut_costs=costs)


class TestConfig:
    @pytest.mark.parametrize(
        "kw",
        [
            {"population_size": 2},
            {"crossover_prob": 1.5},
            {"mutation_prob": -0.1},
            {"elite_fraction": 0.9},
            {"guided_init_fraction": 2.0},
            {"generations": 0},
        ],
    )
    def test_invalid_config_rejected(self, kw):
        with pytest.raises(SearchError):
            GAConfig(**kw)


class TestSearch:
    def test_deterministic_given_seed(self, small_profile):
        a = GeneticSplitter(GAConfig(seed=5)).search(small_profile, 3)
        b = GeneticSplitter(GAConfig(seed=5)).search(small_profile, 3)
        assert a.cuts == b.cuts
        assert a.fitness == b.fitness

    def test_different_seeds_may_differ_but_valid(self, small_profile):
        for seed in range(3):
            r = GeneticSplitter(GAConfig(seed=seed)).search(small_profile, 3)
            assert len(r.cuts) == 2
            assert all(0 <= c <= small_profile.n_ops - 2 for c in r.cuts)

    def test_best_fitness_monotone_over_generations(self, small_profile):
        r = GeneticSplitter(GAConfig(seed=1)).search(small_profile, 3)
        fits = [h.best_fitness for h in r.history]
        assert all(a <= b + 1e-12 for a, b in zip(fits, fits[1:]))

    def test_history_consistent_with_result(self, small_profile):
        r = GeneticSplitter(GAConfig(seed=1)).search(small_profile, 3)
        assert r.history[-1].best_fitness == pytest.approx(r.fitness)
        assert r.history[-1].best_sigma_ms == pytest.approx(r.sigma_ms)
        assert len(r.history) == r.generations_run

    @pytest.mark.parametrize("m", [2, 3])
    def test_finds_near_exhaustive_optimum(self, small_profile, m):
        ga = GeneticSplitter(GAConfig(seed=0, generations=40)).search(
            small_profile, m
        )
        ex = ExhaustiveSplitter().search(small_profile, m)
        # Within 2% of the global optimum's (negative) fitness.
        assert ga.fitness >= ex.fitness * 1.02

    def test_finds_exact_optimum_on_real_models(self, resnet_profile):
        ga = GeneticSplitter(GAConfig(seed=1)).search(resnet_profile, 3)
        ex = ExhaustiveSplitter().search(resnet_profile, 3)
        assert ga.fitness == pytest.approx(ex.fitness, rel=1e-3)

    def test_early_stop_on_stall(self, small_profile):
        cfg = GAConfig(seed=0, generations=200, patience=5)
        r = GeneticSplitter(cfg).search(small_profile, 2)
        assert r.converged_early
        assert r.generations_run < 200

    def test_evaluations_accounted(self, small_profile):
        cfg = GAConfig(seed=0, population_size=10, generations=5, patience=99)
        r = GeneticSplitter(cfg).search(small_profile, 3)
        assert r.evaluations == 10 * r.generations_run

    def test_rejects_single_block(self, small_profile):
        with pytest.raises(SearchError):
            GeneticSplitter().search(small_profile, 1)

    def test_rejects_impossible_split(self):
        profile = make_profile([1.0, 2.0, 3.0])
        with pytest.raises(SearchError):
            GeneticSplitter().search(profile, 5)

    def test_blind_init_still_works(self, small_profile):
        cfg = GAConfig(seed=0, guided_init_fraction=0.0)
        r = GeneticSplitter(cfg).search(small_profile, 3)
        assert len(r.cuts) == 2

    def test_all_guided_init_works(self, small_profile):
        cfg = GAConfig(seed=0, guided_init_fraction=1.0)
        r = GeneticSplitter(cfg).search(small_profile, 3)
        assert len(r.cuts) == 2

    def test_paper_convergence_speed(self, resnet_profile, vgg_profile):
        """Fig. 5: optima found within ~15 generations on the real models."""
        for profile in (resnet_profile, vgg_profile):
            for m in (2, 3, 4):
                r = GeneticSplitter(GAConfig(seed=0)).search(profile, m)
                assert r.generations_run <= 20
