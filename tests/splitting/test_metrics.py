"""Eq. 1 and the Table-3 metrics — including the property-based check that
the closed form matches brute-force averaging."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import PartitionError
from repro.splitting.metrics import (
    block_range_percent,
    block_std_ms,
    expected_waiting_latency_ms,
    partition_summary,
    splitting_overhead_fraction,
)
from repro.splitting.partition import Partition

from tests.conftest import make_profile

block_times = st.lists(
    st.floats(min_value=0.01, max_value=1000.0, allow_nan=False),
    min_size=1,
    max_size=12,
)


class TestEq1:
    def test_single_block_half_latency(self):
        assert expected_waiting_latency_ms([40.0]) == 20.0

    def test_even_blocks(self):
        # n even blocks of t: wait = t/2 regardless of n.
        assert expected_waiting_latency_ms([10.0] * 4) == 5.0
        assert expected_waiting_latency_ms([10.0] * 7) == 5.0

    def test_formula_identity(self):
        """0.5*sum(t^2)/sum(t) == 0.5*(sigma^2/mean + mean)."""
        t = np.array([3.0, 7.0, 12.0, 1.5])
        lhs = expected_waiting_latency_ms(t)
        rhs = 0.5 * (t.std() ** 2 / t.mean() + t.mean())
        assert lhs == pytest.approx(rhs)

    @given(block_times)
    def test_closed_form_identity_property(self, times):
        t = np.asarray(times)
        lhs = expected_waiting_latency_ms(t)
        rhs = 0.5 * (np.var(t) / t.mean() + t.mean())
        assert lhs == pytest.approx(rhs, rel=1e-9)

    @given(block_times)
    @settings(max_examples=30)
    def test_matches_discretised_average(self, times):
        """Integrate the waiting function on a fine grid and compare."""
        t = np.asarray(times)
        ends = np.cumsum(t)
        total = ends[-1]
        grid = np.linspace(0, total, 20001)[:-1] + total / 40002
        idx = np.searchsorted(ends, grid, side="right")
        waits = ends[np.minimum(idx, len(t) - 1)] - grid
        assert waits.mean() == pytest.approx(
            expected_waiting_latency_ms(t), rel=5e-3
        )

    @given(block_times)
    def test_uneven_never_beats_even_same_total(self, times):
        """For a fixed total and count, even blocks minimise Eq. 1."""
        t = np.asarray(times)
        even = np.full_like(t, t.mean())
        assert expected_waiting_latency_ms(t) >= expected_waiting_latency_ms(
            even
        ) - 1e-9

    def test_empty_rejected(self):
        with pytest.raises(PartitionError):
            expected_waiting_latency_ms([])

    def test_negative_rejected(self):
        with pytest.raises(PartitionError):
            expected_waiting_latency_ms([1.0, -1.0])

    def test_zero_total(self):
        assert expected_waiting_latency_ms([0.0, 0.0]) == 0.0


class TestOtherMetrics:
    def test_std(self):
        assert block_std_ms([5.0, 5.0]) == 0.0
        assert block_std_ms([0.0, 10.0]) == 5.0

    def test_range_percent(self):
        assert block_range_percent([5.0, 5.0]) == 0.0
        assert block_range_percent([2.0, 8.0]) == pytest.approx(60.0)

    def test_overhead_fraction(self):
        profile = make_profile([4.0, 6.0], cut_costs=[1.0])
        p = Partition(profile=profile, cuts=(0,))
        assert splitting_overhead_fraction(p) == pytest.approx(0.1)

    def test_summary_keys_and_consistency(self):
        profile = make_profile([4.0, 6.0], cut_costs=[1.0])
        p = Partition(profile=profile, cuts=(0,))
        s = partition_summary(p)
        assert s["blocks"] == 2
        assert s["overhead_pct"] == pytest.approx(10.0)
        assert s["total_ms"] == pytest.approx(11.0)
        assert s["std_ms"] == block_std_ms(p.block_times_ms)
