"""Property-based splitting invariants (hypothesis).

Whatever profile and seed the GA is handed, its output must be a *valid*
split — every operator covered exactly once by contiguous blocks, block
count as requested — and it must never lose to the trivial baseline that
cuts at even operator indices (Eq. 2 fitness is the shared yardstick;
larger is better).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.splitting.fitness import fitness
from repro.splitting.genetic import GAConfig, GeneticSplitter
from repro.splitting.partition import Partition

from tests.conftest import make_profile

SMALL_GA = dict(population_size=16, generations=12, patience=6)


@st.composite
def profile_and_blocks(draw):
    n_ops = draw(st.integers(6, 24))
    rng = np.random.default_rng(draw(st.integers(0, 2**16)))
    times = rng.uniform(0.2, 5.0, n_ops)
    costs = rng.uniform(0.0, 0.4, n_ops - 1)
    n_blocks = draw(st.integers(2, min(5, n_ops - 1)))
    return make_profile(times, cut_costs=costs), n_blocks


def even_index_cuts(n_ops: int, n_blocks: int) -> tuple[int, ...]:
    """Baseline: cut after every ceil-even share of operator *indices*
    (ignores operator times entirely)."""
    cuts = sorted({round(j * n_ops / n_blocks) - 1 for j in range(1, n_blocks)})
    return tuple(min(max(c, 0), n_ops - 2) for c in cuts)


def eq2_fitness(partition: Partition, n_blocks: int) -> float:
    times = partition.block_times_ms
    sigma = float(times.std())
    overhead = partition.overhead_ms / partition.vanilla_ms
    return fitness(sigma, partition.vanilla_ms, overhead, n_blocks)


@given(profile_and_blocks(), st.integers(0, 2**16))
@settings(max_examples=30, deadline=None, derandomize=True)
def test_plan_partitions_operators_contiguously(case, ga_seed):
    profile, n_blocks = case
    result = GeneticSplitter(GAConfig(seed=ga_seed, **SMALL_GA)).search(
        profile, n_blocks
    )
    ranges = result.partition.block_ranges()
    # Contiguous, gap-free, in-order coverage of every operator.
    assert ranges[0][0] == 0
    assert ranges[-1][1] == profile.n_ops - 1
    for (_, hi), (lo, _) in zip(ranges[:-1], ranges[1:]):
        assert lo == hi + 1
    covered = [i for lo, hi in ranges for i in range(lo, hi + 1)]
    assert covered == list(range(profile.n_ops))


@given(profile_and_blocks(), st.integers(0, 2**16))
@settings(max_examples=30, deadline=None, derandomize=True)
def test_block_count_matches_request(case, ga_seed):
    profile, n_blocks = case
    result = GeneticSplitter(GAConfig(seed=ga_seed, **SMALL_GA)).search(
        profile, n_blocks
    )
    assert result.partition.n_blocks == n_blocks
    assert len(result.cuts) == n_blocks - 1
    assert len(set(result.cuts)) == n_blocks - 1
    assert all(0 <= c <= profile.n_ops - 2 for c in result.cuts)


@given(profile_and_blocks())
@settings(max_examples=30, deadline=None, derandomize=True)
def test_ga_winner_at_least_as_fit_as_even_index_baseline(case):
    profile, n_blocks = case
    result = GeneticSplitter(
        GAConfig(seed=0, population_size=32, generations=30, patience=12)
    ).search(profile, n_blocks)
    baseline_cuts = even_index_cuts(profile.n_ops, n_blocks)
    baseline = Partition(profile=profile, cuts=baseline_cuts)
    # The baseline may collapse duplicate cuts on tiny models; only a
    # same-block-count comparison is meaningful.
    if baseline.n_blocks != n_blocks:
        return
    base_fit = eq2_fitness(baseline, n_blocks)
    assert result.fitness >= base_fit - 1e-9


@given(profile_and_blocks(), st.integers(0, 2**16))
@settings(max_examples=20, deadline=None, derandomize=True)
def test_reported_fitness_matches_partition(case, ga_seed):
    """SplitResult.fitness must be Eq. 2 evaluated on its own partition."""
    profile, n_blocks = case
    result = GeneticSplitter(GAConfig(seed=ga_seed, **SMALL_GA)).search(
        profile, n_blocks
    )
    expected = eq2_fitness(result.partition, n_blocks)
    assert result.fitness == pytest.approx(expected, rel=1e-9, abs=1e-9)
