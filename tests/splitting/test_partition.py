"""Partition validation and derived quantities."""

import numpy as np
import pytest

from repro.errors import PartitionError
from repro.splitting.partition import Partition, normalize_cuts

from tests.conftest import make_profile


@pytest.fixture
def profile():
    return make_profile([1.0, 2.0, 3.0, 4.0], cut_costs=[0.1, 0.2, 0.3])


class TestNormalizeCuts:
    def test_sorts(self):
        assert normalize_cuts([2, 0], 5) == (0, 2)

    def test_duplicates_rejected(self):
        with pytest.raises(PartitionError, match="duplicate"):
            normalize_cuts([1, 1], 5)

    def test_out_of_range_rejected(self):
        with pytest.raises(PartitionError, match="out of range"):
            normalize_cuts([4], 5)  # max is n-2 = 3
        with pytest.raises(PartitionError):
            normalize_cuts([-1], 5)

    def test_empty_ok(self):
        assert normalize_cuts([], 5) == ()


class TestPartition:
    def test_vanilla(self, profile):
        p = Partition.vanilla(profile)
        assert p.n_blocks == 1
        assert not p.is_split
        assert p.total_ms == 10.0
        assert p.overhead_ms == 0.0

    def test_split_blocks_and_overhead(self, profile):
        p = Partition(profile=profile, cuts=(1,))
        np.testing.assert_allclose(p.block_times_ms, [3.0, 7.2])
        assert p.overhead_ms == pytest.approx(0.2)
        assert p.n_blocks == 2

    def test_cuts_canonicalised(self, profile):
        p = Partition(profile=profile, cuts=(2, 0))
        assert p.cuts == (0, 2)

    def test_block_ranges(self, profile):
        p = Partition(profile=profile, cuts=(0, 2))
        assert p.block_ranges() == [(0, 0), (1, 2), (3, 3)]

    def test_invalid_cuts_raise(self, profile):
        with pytest.raises(PartitionError):
            Partition(profile=profile, cuts=(9,))

    def test_str(self, profile):
        assert "2 blocks" in str(Partition(profile=profile, cuts=(1,)))
