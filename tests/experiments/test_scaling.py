"""Scale-out experiment."""

import pytest

from repro.experiments import scaling
from repro.experiments.config import ExperimentContext
from repro.runtime.workload import Scenario


@pytest.fixture(scope="module")
def result():
    return scaling.run(
        ExperimentContext(),
        scenario=Scenario("overload-test", 70.0, "high", n_requests=500),
        processor_counts=(1, 2),
    )


def test_rows_present(result):
    assert result.row(1, "round_robin")
    assert result.row(2, "least_backlog")


def test_second_processor_recovers_overload(result):
    one = result.row(1, "round_robin")
    two = result.row(2, "least_backlog")
    assert two.violation_at_4 < one.violation_at_4
    assert two.mean_rr < one.mean_rr


def test_backlog_routing_beats_round_robin(result):
    rr = result.row(2, "round_robin")
    lb = result.row(2, "least_backlog")
    assert lb.mean_rr <= rr.mean_rr + 0.2


def test_render(result):
    text = scaling.render(result)
    assert "Scale-out" in text


def test_unknown_row(result):
    with pytest.raises(KeyError):
        result.row(9, "round_robin")
