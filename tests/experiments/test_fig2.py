"""Fig. 2: the two observations behind the GA design."""

import numpy as np
import pytest

from repro.experiments import fig2
from repro.experiments.config import ExperimentContext


@pytest.fixture(scope="module")
def result():
    return fig2.run(ExperimentContext(), model="resnet50", stride=3)


def test_grid_shape(result):
    g = len(result.positions)
    assert result.overhead_pct.shape == (g, g)
    assert result.std_ms.shape == (g, g)


def test_upper_triangle_populated(result):
    assert not np.isnan(result.overhead_pct[0, 1])
    assert np.isnan(result.overhead_pct[1, 0])
    assert np.isnan(result.overhead_pct[0, 0])


def test_observation_a_early_cuts_cost_more(result):
    """Fig. 2(a): splitting early operators incurs larger overhead."""
    assert result.front_overhead_pct > result.back_overhead_pct


def test_observation_b_even_cuts_sit_mid_front(result):
    """Fig. 2(b): the most even split is near the middle, slightly front."""
    c1, c2 = result.best_std_cuts
    n = 122
    assert n * 0.2 < c1 < n * 0.55
    assert n * 0.45 < c2 < n * 0.85


def test_std_landscape_worst_at_extremes(result):
    """Cutting at the first/last operators gives very uneven splits."""
    std = result.std_ms
    corner = std[0, -1]  # earliest first cut, latest second cut keeps a
    # huge middle block.
    assert corner > result.best_std_ms * 5


def test_vgg_also_shows_observation_a():
    r = fig2.run(ExperimentContext(), model="vgg19", stride=1)
    assert r.front_overhead_pct > r.back_overhead_pct


def test_render(result):
    text = fig2.render(result)
    assert "Fig. 2" in text
    assert "front-third" in text
