"""Eq. 1 experiment: closed form vs Monte Carlo."""

import pytest

from repro.experiments import eq1
from repro.experiments.config import ExperimentContext


@pytest.fixture(scope="module")
def result():
    return eq1.run(ExperimentContext(), n_samples=50_000)


def test_all_cases_close(result):
    for case in result.cases:
        assert case.rel_error < 0.02, case.label


def test_covers_even_uneven_single(result):
    labels = {c.label for c in result.cases}
    assert {"even-4", "skewed-4", "single"} <= labels


def test_even_blocks_give_half_mean(result):
    case = next(c for c in result.cases if c.label == "even-4")
    assert case.closed_form_ms == pytest.approx(5.0)


def test_render(result):
    assert "Eq. 1" in eq1.render(result)
