"""Hardware-sensitivity experiment."""

import pytest

from repro.experiments import sensitivity
from repro.experiments.config import ExperimentContext


@pytest.fixture(scope="module")
def result():
    return sensitivity.run(
        ExperimentContext(), models=("resnet50",), factors=(0.5, 1.0, 2.0)
    )


def test_sweep_shape(result):
    assert len(result.sweeps) == 1
    assert len(result.sweeps[0].points) == 3


def test_block_count_monotone_in_bandwidth(result):
    counts = [p.optimal_blocks for p in result.sweeps[0].points]
    assert counts == sorted(counts)


def test_presets_cover_three_devices(result):
    devices = {r.device for r in result.presets}
    assert devices == {"jetson-nano", "jetson-xavier", "desktop-gpu"}


def test_faster_devices_split_at_least_as_much(result):
    by_device = {r.device: r.optimal_blocks for r in result.presets}
    assert by_device["jetson-xavier"] >= by_device["jetson-nano"]


def test_render(result):
    text = sensitivity.render(result)
    assert "Staging-bandwidth sweep" in text
    assert "Device presets" in text
