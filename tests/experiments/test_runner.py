"""Experiment CLI."""

import pytest

from repro.experiments.runner import main


def test_table1_via_cli(capsys):
    assert main(["table1"]) == 0
    out = capsys.readouterr().out
    assert "Table 1" in out
    assert "resnet50" in out


def test_eq1_via_cli(capsys):
    assert main(["eq1"]) == 0
    assert "Eq. 1" in capsys.readouterr().out


def test_seed_flag(capsys):
    assert main(["table1", "--seed", "3"]) == 0


def test_unknown_experiment_rejected():
    with pytest.raises(SystemExit):
        main(["fig99"])


def test_fig5_plot_flag(capsys):
    assert main(["fig5", "--plot"]) == 0
    out = capsys.readouterr().out
    assert "generation" in out
    assert "RES-1" in out


def test_plot_flag_ignored_for_tables(capsys):
    assert main(["table1", "--plot"]) == 0
    assert "Table 1" in capsys.readouterr().out


def test_out_flag_writes_reports(tmp_path, capsys):
    assert main(["table1", "--out", str(tmp_path)]) == 0
    written = tmp_path / "table1.txt"
    assert written.exists()
    assert "Table 1" in written.read_text()
