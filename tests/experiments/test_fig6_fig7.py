"""Figs. 6-7 at reduced scale: orderings and headline directions."""

import numpy as np
import pytest

from repro.experiments import fig6, fig7
from repro.experiments.config import ExperimentContext
from repro.runtime.workload import Scenario

# Reduced grid: two scenarios, 250 requests, keeps the suite fast.
SCENARIOS = (
    Scenario("lo", 160.0, "low", n_requests=250),
    Scenario("hi", 115.0, "high", n_requests=250),
)
ALPHAS = tuple(float(a) for a in (2, 4, 8, 12, 16, 20))


@pytest.fixture(scope="module")
def ctx():
    return ExperimentContext()


@pytest.fixture(scope="module")
def f6(ctx):
    return fig6.run(ctx, scenarios=SCENARIOS, alphas=ALPHAS)


@pytest.fixture(scope="module")
def f7(ctx):
    return fig7.run(ctx, scenarios=SCENARIOS)


class TestFig6:
    def test_grid_complete(self, f6):
        assert len(f6.cells) == 2 * 4
        assert f6.scenarios() == ("lo", "hi")

    def test_curves_monotone_in_alpha(self, f6):
        for cell in f6.cells:
            curve = np.asarray(cell.violation_rate)
            assert (np.diff(curve) <= 1e-12).all(), (cell.policy, cell.scenario)

    def test_split_dominates_baselines(self, f6):
        """SPLIT lowers the violation rate in all scenarios (paper §5.5).

        Checked at alpha in {4, 8} (where the paper's claims live) and on
        the curve mean; the extreme tail can favour PREMA slightly because
        greedy preemption trades long-request tails for short-request
        latency — the stability trade-off §5.5 itself describes.
        """
        for scen in f6.scenarios():
            split = f6.curve("split", scen)
            for baseline in ("clockwork", "prema", "rta"):
                other = f6.curve(baseline, scen)
                assert split[1] <= other[1] + 1e-12, (scen, baseline, "a=4")
                assert split[2] <= other[2] + 1e-12, (scen, baseline, "a=8")
                assert split.mean() <= other.mean() + 1e-12, (scen, baseline)

    def test_max_reduction_meaningful(self, f6):
        """Headline-scale reductions (paper: up to 43%)."""
        assert f6.max_reduction_vs("clockwork") > 0.3

    def test_curve_unknown_cell(self, f6):
        with pytest.raises(KeyError):
            f6.curve("split", "ghost")

    def test_render(self, f6):
        text = fig6.render(f6)
        assert "Fig. 6" in text and "max reduction" in text


class TestFig7:
    def test_grid_complete(self, f7):
        assert len(f7.cells) == 2 * 4

    def test_short_models_identified(self, f7):
        assert set(f7.short_models()) == {"yolov2", "googlenet", "gpt2"}

    def test_split_reduces_short_jitter_under_load(self, f7):
        """Paper: 50-70% short-request jitter reduction vs baselines."""
        for baseline in ("clockwork", "rta"):
            red = f7.short_jitter_reduction(baseline, "hi")
            assert red > 0.3, baseline

    def test_long_models_sacrifice_stability(self, f7):
        """Paper §5.5: SPLIT trades long-model stability away."""
        split_vgg = f7.jitter("split", "hi", "vgg19")
        split_yolo = f7.jitter("split", "hi", "yolov2")
        assert split_vgg > split_yolo

    def test_render(self, f7):
        text = fig7.render(f7)
        assert "Fig. 7" in text and "jitter" in text
