"""Burst-robustness study + trace-driven simulation entry point."""

import pytest

from repro.errors import SimulationError
from repro.experiments import bursts
from repro.experiments.config import ExperimentContext
from repro.runtime.simulator import simulate_items
from repro.runtime.traces import load_trace, save_trace
from repro.runtime.workload import WorkloadItem


@pytest.fixture(scope="module")
def result():
    return bursts.run(ExperimentContext(), n_requests=500)


class TestBurstStudy:
    def test_all_policies_present(self, result):
        assert {r.policy for r in result.rows} == {
            "split", "clockwork", "prema", "rta"
        }

    def test_workload_actually_bursty(self, result):
        assert result.burstiness > 1.2

    def test_split_best_at_claim_point(self, result):
        split = result.row("split")
        for other in ("clockwork", "prema", "rta"):
            assert split.violation_at_4 <= result.row(other).violation_at_4 + 1e-12

    def test_split_best_short_tail(self, result):
        split = result.row("split")
        for other in ("clockwork", "rta"):
            assert split.short_burst_p95_rr <= result.row(other).short_burst_p95_rr

    def test_render(self, result):
        assert "Burst robustness" in bursts.render(result)

    def test_unknown_policy_row(self, result):
        with pytest.raises(KeyError):
            result.row("ghost")


class TestSimulateItems:
    def test_empty_items_rejected(self):
        with pytest.raises(SimulationError):
            simulate_items("split", [])

    def test_hand_built_schedule(self):
        items = [
            WorkloadItem(0.0, "vgg19"),
            WorkloadItem(5.0, "yolov2"),
            WorkloadItem(6.0, "yolov2"),
        ]
        r = simulate_items("split", items, keep_trace=True)
        assert r.report.n_requests == 3
        r.engine_result.trace.verify()

    def test_trace_roundtrip_through_simulation(self, tmp_path):
        items = [WorkloadItem(float(i * 40), "googlenet") for i in range(20)]
        path = save_trace(items, tmp_path / "t.csv")
        replayed = load_trace(path)
        a = simulate_items("clockwork", items)
        b = simulate_items("clockwork", replayed)
        ra = [(r.arrival_ms, r.finish_ms) for r in a.report.records]
        rb = [(r.arrival_ms, r.finish_ms) for r in b.report.records]
        assert ra == pytest.approx(rb)

    def test_unknown_policy(self):
        with pytest.raises(SimulationError):
            simulate_items("bogus", [WorkloadItem(0.0, "vgg19")])

    @pytest.mark.parametrize("policy", ["rta", "prema", "reef", "fifo"])
    def test_other_policies_accept_items(self, policy):
        items = [WorkloadItem(float(i * 30), "yolov2") for i in range(10)]
        r = simulate_items(policy, items)
        assert r.report.n_requests == 10
