"""Stress experiment: ladder mechanics, verification, and the large-N gate.

The small cells run everywhere; the 100k smoke (wall-clock and memory
bounds, batch-equivalence replay) is opt-in via ``SPLIT_LARGE_N=1`` —
CI sets it in a dedicated step so the tier-1 suite stays fast locally.
"""

from __future__ import annotations

import os

import pytest

from repro.errors import SimulationError
from repro.experiments import stress
from repro.experiments.config import ExperimentContext
from repro.utils.memwatch import traced_peak


@pytest.fixture(scope="module")
def ctx():
    return ExperimentContext()


class TestSmallCells:
    def test_ladder_runs_and_renders(self, ctx):
        result = stress.run(ctx, sizes=(100, 300), verify=True)
        assert [r.n_requests for r in result.rows] == [100, 300]
        for row in result.rows:
            assert row.verified
            assert row.wall_s > 0
            assert row.served + row.rejected <= row.n_requests
            assert 0.0 <= row.violation_at_8 <= 1.0
        text = stress.render(result)
        assert "req/s" in text and "300" in text

    def test_row_lookup(self, ctx):
        result = stress.run(ctx, sizes=(50,))
        assert result.row(50).n_requests == 50
        with pytest.raises(KeyError):
            result.row(51)

    def test_verify_replays_batch(self, ctx):
        """verify=True must actually exercise the batch comparison: a cell
        with and without it agrees on everything but the flag."""
        plain = stress.run_cell(200, ctx=ctx, verify=False)
        checked = stress.run_cell(200, ctx=ctx, verify=True)
        assert not plain.verified and checked.verified
        assert plain.served == checked.served
        assert plain.violation_at_8 == checked.violation_at_8

    def test_conservation_guard(self, ctx, monkeypatch):
        """A sink that loses records must trip the conservation check."""
        from repro.runtime import simulator as sim_mod

        real = sim_mod.simulate_stream

        def lossy(*args, **kwargs):
            result = real(*args, **kwargs)
            result.qos._outcomes["served"] -= 1
            result.qos._n -= 1
            return result

        monkeypatch.setattr(stress, "simulate_stream", lossy)
        with pytest.raises(SimulationError, match="conservation"):
            stress.run_cell(100, ctx=ctx)


@pytest.mark.skipif(
    not os.environ.get("SPLIT_LARGE_N"),
    reason="large-N smoke is opt-in: set SPLIT_LARGE_N=1",
)
class TestLargeN:
    """The CI smoke: the 10^5 cell under a minute, bounded memory, and
    bit-identical to the batch path."""

    N = 100_000

    def test_100k_wall_clock_and_batch_equivalence(self, ctx):
        row = stress.run_cell(self.N, ctx=ctx, verify=True)
        assert row.verified
        assert row.wall_s < 60.0, f"100k cell took {row.wall_s:.1f}s"
        assert row.served + row.rejected == self.N

    def test_100k_streaming_memory_bounded(self, ctx):
        """tracemalloc peak of the streaming cell (no batch replay inside
        the trace — that path materialises n records by design)."""
        stress.run_cell(1_000, ctx=ctx)  # warm caches + code paths
        _, peak_bytes = traced_peak(
            lambda: stress.run_cell(self.N, ctx=ctx, verify=False)
        )
        peak_mb = peak_bytes / 1e6
        assert peak_mb < 200.0, f"streaming 100k cell peaked at {peak_mb:.0f}MB"
