"""Differentiated QoS targets (extension experiment)."""

import pytest

from repro.experiments import qos_targets
from repro.experiments.config import ExperimentContext
from repro.runtime.workload import Scenario


@pytest.fixture(scope="module")
def result():
    return qos_targets.run(
        ExperimentContext(),
        scenario=Scenario("tier-test", 130.0, "high", n_requests=500),
    )


def test_rows_cover_both_configs(result):
    configs = {r.config for r in result.rows}
    assert configs == {"uniform", "tiered"}
    assert len(result.rows) == 10


def test_strict_task_scheduled_better(result):
    """The strict task's mean RR improves when tiered (the greedy rule
    actually reacts to per-task targets, not just the metric)."""
    uniform = next(
        r for r in result.rows if r.config == "uniform" and r.model == "googlenet"
    )
    tiered = next(
        r for r in result.rows if r.config == "tiered" and r.model == "googlenet"
    )
    assert tiered.mean_rr < uniform.mean_rr


def test_lenient_task_meets_its_relaxed_target(result):
    tiered_gpt2 = result.violation("tiered", "gpt2")
    uniform_gpt2 = result.violation("uniform", "gpt2")
    assert tiered_gpt2 <= uniform_gpt2


def test_unaffected_tasks_stable(result):
    """Models outside the tiering keep (nearly) the same outcomes."""
    for model in ("resnet50", "vgg19"):
        u = next(
            r for r in result.rows if r.config == "uniform" and r.model == model
        )
        t = next(
            r for r in result.rows if r.config == "tiered" and r.model == model
        )
        assert t.mean_rr == pytest.approx(u.mean_rr, rel=0.1)


def test_render(result):
    text = qos_targets.render(result)
    assert "Differentiated QoS" in text and "overall viol@4" in text


def test_violation_unknown_cell(result):
    with pytest.raises(KeyError):
        result.violation("uniform", "ghost")
