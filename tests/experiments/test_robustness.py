"""Multi-seed robustness study."""

import pytest

from repro.experiments import robustness
from repro.experiments.config import ExperimentContext
from repro.runtime.workload import Scenario


@pytest.fixture(scope="module")
def result():
    return robustness.run(
        ExperimentContext(),
        scenario=Scenario("robust-test", 130.0, "high", n_requests=400),
        baselines=("clockwork", "rta"),
        alphas=(4.0,),
        n_seeds=5,
    )


def test_rows_cover_grid(result):
    assert len(result.rows) == 2


def test_split_beats_baselines_with_confidence(result):
    """Across seeds, SPLIT's violation rate is below each baseline with the
    whole bootstrap CI on the favourable side."""
    for r in result.rows:
        assert r.mean_diff < 0, r.baseline
        assert r.ci_high < 0, r.baseline
        assert r.wins == r.seeds, r.baseline


def test_ci_ordered(result):
    for r in result.rows:
        assert r.ci_low <= r.mean_diff <= r.ci_high


def test_render(result):
    assert "Robustness" in robustness.render(result)


def test_unknown_row(result):
    with pytest.raises(KeyError):
        result.row("prema", 99.0)
