"""Ablation study directions (reduced scale via the scenario overrides)."""

import pytest

from repro.experiments import ablations
from repro.experiments.config import ExperimentContext
from repro.runtime.workload import Scenario


@pytest.fixture(scope="module")
def result():
    ctx = ExperimentContext(
        scenarios=(
            Scenario("scenario1", 160.0, "low", n_requests=250),
            Scenario("scenario6", 110.0, "high", n_requests=250),
        )
    )
    # ablations.run reads SCENARIOS[0]/[5] directly, so monkey-patching the
    # module-level catalogue would leak; run at full default scale for the
    # sections that need it but with the context's profiles shared.
    return ablations.run(ctx)


class TestGAInit:
    def test_guided_reaches_exhaustive_level(self, result):
        for row in result.ga_init:
            assert row.guided_fitness >= row.exhaustive_fitness * 1.03

    def test_guided_not_worse_than_blind(self, result):
        for row in result.ga_init:
            assert row.guided_fitness >= row.blind_fitness - 0.01


class TestPolicies:
    def test_greedy_beats_fifo(self, result):
        by = {(r.label, r.scenario): r for r in result.policies}
        for scen in ("scenario1", "scenario6"):
            greedy = by[("greedy (SPLIT)", scen)]
            fifo = by[("FIFO whole-model", scen)]
            assert greedy.violation_at_4 <= fifo.violation_at_4


class TestElastic:
    def test_elastic_rows_present(self, result):
        labels = {r.label for r in result.elastic}
        assert labels == {"elastic on", "elastic off"}

    def test_elastic_not_harmful_at_violation_level(self, result):
        by = {r.label: r for r in result.elastic}
        assert (
            by["elastic on"].violation_at_8
            <= by["elastic off"].violation_at_8 + 0.05
        )


class TestPreemption:
    def test_full_beats_partial(self, result):
        """Fig. 3: full preemption keeps latency lower than interleaving."""
        by = {r.label: r for r in result.preemption}
        full = by["full preemption (SPLIT)"]
        partial = by["partial (round-robin blocks)"]
        assert full.mean_rr <= partial.mean_rr


class TestBlockCounts:
    def test_optimum_is_interior(self, result):
        """Eq. 1's hyperbola: some split beats both extremes for the long
        models (wait + overhead scored)."""
        for model in ("resnet50", "vgg19"):
            rows = [r for r in result.block_counts if r.model == model]
            scores = {
                r.n_blocks: r.expected_wait_ms
                + r.overhead_pct / 100.0 * 0  # wait already includes blocks
                for r in rows
            }
            best = min(scores, key=lambda m: scores[m])
            assert scores[best] < scores[1]

    def test_overhead_monotone_in_blocks(self, result):
        for model in ("resnet50", "vgg19"):
            rows = sorted(
                (r for r in result.block_counts if r.model == model),
                key=lambda r: r.n_blocks,
            )
            ovh = [r.overhead_pct for r in rows]
            assert all(a <= b + 1e-9 for a, b in zip(ovh, ovh[1:]))


def test_render(result):
    text = ablations.render(result)
    for section in ("A. GA initialisation", "B. Scheduling", "C. Elastic",
                    "D. Full vs partial", "E. Block-count"):
        assert section in text
