"""The abstract's headline claims, recomputed at reduced scale."""

import pytest

from repro.experiments import fig6, fig7
from repro.experiments.config import ExperimentContext
from repro.experiments.runner import run_headline
from repro.runtime.workload import Scenario

SCENARIOS = (
    Scenario("scenario1", 160.0, "low", n_requests=400),
    Scenario("scenario6", 110.0, "high", n_requests=400),
)


@pytest.fixture(scope="module")
def ctx():
    return ExperimentContext(scenarios=SCENARIOS)


def test_violation_reduction_claim(ctx):
    """Paper: violation rate reduced by up to 43% — ours exceeds that."""
    f6 = fig6.run(ctx, scenarios=SCENARIOS)
    best = max(f6.max_reduction_vs(b) for b in ("clockwork", "prema", "rta"))
    assert best >= 0.43


def test_jitter_reduction_claim(ctx):
    """Paper: jitter reduced by up to 69.3% — ours reaches it under load."""
    f7 = fig7.run(ctx, scenarios=SCENARIOS)
    best = max(
        f7.short_jitter_reduction(b, "scenario6")
        for b in ("clockwork", "prema", "rta")
    )
    assert best >= 0.693


def test_run_headline_renders(ctx):
    text = run_headline(ctx)
    assert "violation-rate reduction" in text
    assert "jitter reduction" in text
    assert "43%" in text and "69.3%" in text
