"""Fig. 5 (GA convergence) and Table 3 (optimal splits)."""

import pytest

from repro.experiments import fig5, table3
from repro.experiments.config import ExperimentContext


@pytest.fixture(scope="module")
def ctx():
    return ExperimentContext()


@pytest.fixture(scope="module")
def f5(ctx):
    return fig5.run(ctx)


@pytest.fixture(scope="module")
def t3(ctx):
    return table3.run(ctx)


class TestFig5:
    def test_six_series(self, f5):
        labels = {s.label for s in f5.series}
        assert labels == {"RES-1", "RES-2", "RES-3", "VGG-1", "VGG-2", "VGG-3"}

    def test_convergence_within_15_generations(self, f5):
        """The paper: all models find the optimum within 15 generations."""
        for s in f5.series:
            assert s.generations_to_best <= 15, s.label

    def test_history_lengths_match(self, f5):
        for s in f5.series:
            assert len(s.std_by_generation) == len(s.overhead_pct_by_generation)
            assert len(s.std_by_generation) == s.result.generations_run

    def test_final_overhead_not_above_initial(self, f5):
        """Fig. 5(b): overhead of the best candidate ends at or below its
        starting value."""
        for s in f5.series:
            assert (
                s.overhead_pct_by_generation[-1]
                <= s.overhead_pct_by_generation[0] + 1e-9
            ), s.label

    def test_render(self, f5):
        assert "RES-1" in fig5.render(f5)


class TestTable3:
    def test_six_rows(self, t3):
        assert len(t3.rows) == 6

    def test_overhead_grows_with_blocks(self, t3):
        """Table 3's trend: more blocks -> more overhead (per model)."""
        for model in ("resnet50", "vgg19"):
            ovh = [r.overhead_pct for r in t3.rows if r.model == model]
            assert ovh == sorted(ovh), model

    def test_splits_are_even(self, t3):
        """Every GA split keeps the range under ~10% of total (paper's
        worst even-split range at small block counts)."""
        for r in t3.rows:
            if r.blocks <= 3:
                assert r.range_pct < 10.0, (r.model, r.blocks)

    def test_overheads_in_paper_ballpark(self, t3):
        """Within a factor of ~3 of the paper's Table-3 overheads (shape
        reproduction; the substrate differs)."""
        for r in t3.rows:
            assert r.overhead_pct < r.paper_overhead_pct * 3 + 5

    def test_optimal_counts_small(self, t3):
        assert t3.optimal_blocks["resnet50"] in (2, 3)
        assert t3.optimal_blocks["vgg19"] in (2, 3)

    def test_render(self, t3):
        text = table3.render(t3)
        assert "Table 3" in text and "optimal block counts" in text
