"""Fleet experiment: ladder mechanics and the large-N gate.

Small cells run everywhere; the headline cell — a million requests over
the 100-node mixed inventory — is opt-in via ``SPLIT_LARGE_N=1`` (CI
runs it in a dedicated step so tier-1 stays fast locally).
"""

from __future__ import annotations

import os

import pytest

from repro.cluster import DEFAULT_INVENTORY, parse_inventory
from repro.experiments import fleet
from repro.experiments.config import ExperimentContext


@pytest.fixture(scope="module")
def ctx():
    return ExperimentContext()


class TestSmallCells:
    def test_ladder_runs_and_renders(self, ctx):
        result = fleet.run(
            ctx, sizes=(500, 1500), inventory="jetson-nano:2,desktop-gpu:1"
        )
        assert [r.n_requests for r in result.rows] == [500, 1500]
        for row in result.rows:
            assert row.n_nodes == 3
            assert row.wall_s > 0
            assert row.served <= row.n_requests
            assert 0.0 <= row.violation_at_8 <= 1.0
            assert row.max_node_load >= row.min_node_load > 0
        text = fleet.render(result)
        assert "req/s" in text and "1500" in text

    def test_row_lookup(self, ctx):
        result = fleet.run(ctx, sizes=(300,), inventory="jetson-nano:2")
        assert result.row(300).n_requests == 300
        with pytest.raises(KeyError):
            result.row(301)

    def test_load_derived_from_inventory(self, ctx):
        """Adding capacity at fixed rho must raise the offered rate
        (smaller per-model interarrival mean)."""
        small = fleet.run_cell(200, ctx=ctx, inventory="jetson-nano:2")
        large = fleet.run_cell(
            200, ctx=ctx, inventory="jetson-nano:2,desktop-gpu:2"
        )
        assert large.lambda_ms < small.lambda_ms

    def test_registered_as_explicit_cli_run(self):
        from repro.experiments import EXPERIMENT_IDS
        from repro.experiments.runner import _RUNNERS

        assert "fleet" in _RUNNERS
        assert "fleet" not in EXPERIMENT_IDS  # not part of "all"


@pytest.mark.skipif(
    not os.environ.get("SPLIT_LARGE_N"),
    reason="large-N smoke is opt-in: set SPLIT_LARGE_N=1",
)
class TestLargeN:
    def test_million_requests_over_100_nodes(self):
        ctx = ExperimentContext()
        row = fleet.run_cell(1_000_000, ctx=ctx)
        assert row.n_nodes == sum(
            c.count for c in parse_inventory(DEFAULT_INVENTORY)
        )
        assert row.n_nodes == 100
        assert row.served <= row.n_requests == 1_000_000
        assert row.transfer_hops > 0
        # Throughput and memory must stay in the same class as the
        # single-node stress ladder: a fleet is 100 independent shards,
        # not a 100x cost multiplier.
        assert row.requests_per_s > 10_000
        assert row.peak_rss_delta_mb < 2_000
