"""Fig. 1: the motivating two-request schedule."""

import pytest

from repro.experiments import fig1
from repro.experiments.config import ExperimentContext


@pytest.fixture(scope="module")
def result():
    return fig1.run(ExperimentContext())


def test_four_schemes(result):
    assert {r.scheme for r in result.rows} == {
        "stream-parallel",
        "runtime-aware",
        "sequential",
        "split",
    }


def test_split_lowest_average_rr(result):
    """The figure's message: evenly-sized splitting minimises the average
    response ratio."""
    split = result.row("split")
    for other in ("stream-parallel", "runtime-aware", "sequential"):
        assert split.avg_rr <= result.row(other).avg_rr + 1e-9


def test_sequential_starves_the_short_request(result):
    seq = result.row("sequential")
    # A waits for all of B: e2e = (ext_B - gap) + ext_A.
    assert seq.a_e2e_ms == pytest.approx(67.5 - 20.0 + 10.8)
    assert seq.b_rr == pytest.approx(1.0)


def test_alignment_drags_short_toward_long(result):
    """§1: under RT-A the short request 'has to be aligned with request B
    and wait for the completion of request B'."""
    rta = result.row("runtime-aware")
    seq = result.row("sequential")
    assert rta.a_e2e_ms > seq.a_e2e_ms * 0.8  # close to sequential's wait

    # ... while SPLIT's A returns in a fraction of that.
    assert result.row("split").a_e2e_ms < rta.a_e2e_ms / 1.8


def test_stream_parallel_contention_hurts_long(result):
    sp = result.row("stream-parallel")
    seq = result.row("sequential")
    assert sp.b_e2e_ms > seq.b_e2e_ms  # contention stretches B


def test_split_b_overhead_bounded(result):
    split = result.row("split")
    # B pays the split overhead + one preemption, nothing pathological.
    assert split.b_rr < 1.4


def test_render(result):
    assert "Fig. 1" in fig1.render(result)


def test_unknown_scheme(result):
    with pytest.raises(KeyError):
        result.row("ghost")
