"""Table 1 reproduction: exact operator counts and calibrated latencies."""

import pytest

from repro.experiments import table1
from repro.experiments.config import ExperimentContext


@pytest.fixture(scope="module")
def result():
    return table1.run(ExperimentContext())


def test_all_five_models(result):
    assert len(result.rows) == 5


def test_operator_counts_match_paper(result):
    for row in result.rows:
        assert row.operators == row.paper_operators, row.model


def test_latencies_match_paper(result):
    for row in result.rows:
        assert row.latency_ms == pytest.approx(row.paper_latency_ms, rel=1e-6)


def test_types_match_paper(result):
    types = {r.model: r.request_type for r in result.rows}
    assert types["vgg19"] == "long"
    assert types["resnet50"] == "long"
    assert types["yolov2"] == "short"


def test_render(result):
    text = table1.render(result)
    assert "Table 1" in text
    assert "resnet50" in text
