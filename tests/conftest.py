"""Shared fixtures: devices, profiles, and synthetic profile builders."""

from __future__ import annotations

import numpy as np
import pytest

from repro.hardware.presets import jetson_nano
from repro.profiling.cache import ProfileCache
from repro.profiling.records import ModelProfile
from repro.zoo.registry import get_model


@pytest.fixture(scope="session")
def nano():
    return jetson_nano()


@pytest.fixture(scope="session")
def profile_cache(nano):
    return ProfileCache(nano)


@pytest.fixture(scope="session")
def resnet_profile(profile_cache):
    return profile_cache.get(get_model("resnet50", cached=True))


@pytest.fixture(scope="session")
def vgg_profile(profile_cache):
    return profile_cache.get(get_model("vgg19", cached=True))


@pytest.fixture(scope="session")
def yolo_profile(profile_cache):
    return profile_cache.get(get_model("yolov2", cached=True))


def make_profile(
    op_times, cut_costs=None, name="synthetic", device="test-device"
) -> ModelProfile:
    """Construct a profile straight from arrays (no graph needed)."""
    op_times = np.asarray(op_times, dtype=float)
    if cut_costs is None:
        cut_costs = np.zeros(len(op_times) - 1)
    return ModelProfile(
        model_name=name,
        device_name=device,
        op_times_ms=op_times,
        cut_cost_ms=np.asarray(cut_costs, dtype=float),
    )


@pytest.fixture
def synthetic_profile():
    return make_profile
