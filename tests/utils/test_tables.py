"""Text-table renderer."""

import pytest

from repro.utils.tables import format_table


def test_basic_alignment():
    out = format_table(["name", "x"], [["a", 1.5], ["bb", 10.25]])
    lines = out.splitlines()
    assert lines[0].startswith("name")
    assert "-+-" in lines[1]
    assert lines[2].startswith("a")
    assert "10.25" in lines[3]


def test_title_rendered():
    out = format_table(["h"], [["v"]], title="My Table")
    assert out.splitlines()[0] == "My Table"
    assert out.splitlines()[1] == "========"


def test_floatfmt_applied():
    out = format_table(["x"], [[3.14159]], floatfmt=".1f")
    assert "3.1" in out
    assert "3.14" not in out


def test_int_not_float_formatted():
    out = format_table(["x"], [[7]])
    assert "7" in out and "7.00" not in out


def test_ragged_row_raises():
    with pytest.raises(ValueError, match="cells"):
        format_table(["a", "b"], [[1]])


def test_empty_rows_ok():
    out = format_table(["a"], [])
    assert "a" in out
