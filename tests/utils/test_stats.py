"""OnlineStats correctness (vs NumPy) and summary helpers."""

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils.stats import (
    OnlineStats,
    bootstrap_ci,
    coefficient_of_variation,
    percentile,
    summarize,
)

finite_floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


class TestOnlineStats:
    def test_empty(self):
        s = OnlineStats()
        assert s.count == 0
        assert math.isnan(s.mean)
        assert math.isnan(s.std)

    def test_single_value(self):
        s = OnlineStats()
        s.add(5.0)
        assert s.mean == 5.0
        assert s.variance == 0.0
        assert s.min == 5.0
        assert s.max == 5.0

    @given(st.lists(finite_floats, min_size=1, max_size=200))
    def test_matches_numpy(self, xs):
        s = OnlineStats()
        s.extend(xs)
        arr = np.asarray(xs)
        assert s.count == len(xs)
        assert s.mean == pytest.approx(arr.mean(), rel=1e-9, abs=1e-6)
        assert s.variance == pytest.approx(arr.var(), rel=1e-6, abs=1e-4)
        assert s.min == arr.min()
        assert s.max == arr.max()

    @given(
        st.lists(finite_floats, min_size=1, max_size=50),
        st.lists(finite_floats, min_size=1, max_size=50),
    )
    def test_merge_equals_concat(self, xs, ys):
        a = OnlineStats()
        a.extend(xs)
        b = OnlineStats()
        b.extend(ys)
        a.merge(b)
        arr = np.asarray(xs + ys)
        assert a.count == len(arr)
        assert a.mean == pytest.approx(arr.mean(), rel=1e-9, abs=1e-6)
        assert a.variance == pytest.approx(arr.var(), rel=1e-6, abs=1e-4)

    def test_merge_with_empty(self):
        a = OnlineStats()
        a.extend([1.0, 2.0])
        a.merge(OnlineStats())
        assert a.count == 2
        b = OnlineStats()
        b.merge(a)
        assert b.count == 2
        assert b.mean == 1.5


class TestHelpers:
    def test_percentile_basic(self):
        assert percentile([1, 2, 3, 4, 5], 50) == 3.0

    def test_percentile_empty_nan(self):
        assert math.isnan(percentile([], 50))

    def test_cv(self):
        assert coefficient_of_variation([2.0, 2.0]) == 0.0
        assert math.isnan(coefficient_of_variation([]))
        assert math.isnan(coefficient_of_variation([0.0, 0.0]))

    def test_bootstrap_ci_contains_mean_for_tight_data(self):
        lo, hi = bootstrap_ci([10.0] * 50, seed=1)
        assert lo == pytest.approx(10.0)
        assert hi == pytest.approx(10.0)

    def test_bootstrap_ci_ordered(self):
        rng = np.random.default_rng(0)
        xs = rng.normal(5, 1, size=100)
        lo, hi = bootstrap_ci(xs, seed=2)
        assert lo < xs.mean() < hi

    def test_bootstrap_empty(self):
        lo, hi = bootstrap_ci([])
        assert math.isnan(lo) and math.isnan(hi)

    def test_summarize_keys(self):
        s = summarize([1.0, 2.0, 3.0])
        assert set(s) == {"mean", "std", "min", "p50", "p95", "p99", "max"}
        assert s["min"] == 1.0 and s["max"] == 3.0

    def test_summarize_empty_all_nan(self):
        assert all(math.isnan(v) for v in summarize([]).values())
