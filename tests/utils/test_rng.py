"""Seed-derivation determinism and independence."""

import numpy as np

from repro.utils.rng import derive_seed, rng_from


def test_same_path_same_seed():
    assert derive_seed(42, "a", 1) == derive_seed(42, "a", 1)


def test_different_labels_differ():
    seeds = {
        derive_seed(42, "a"),
        derive_seed(42, "b"),
        derive_seed(42, "a", 0),
        derive_seed(43, "a"),
    }
    assert len(seeds) == 4


def test_label_types_are_stringified():
    assert derive_seed(1, 2, "3") == derive_seed(1, "2", 3)


def test_seed_in_64_bit_range():
    s = derive_seed(0, "x" * 1000)
    assert 0 <= s < 2**64


def test_rng_from_reproducible():
    a = rng_from(7, "stream").normal(size=16)
    b = rng_from(7, "stream").normal(size=16)
    np.testing.assert_array_equal(a, b)


def test_rng_from_streams_independent():
    a = rng_from(7, "s1").normal(size=16)
    b = rng_from(7, "s2").normal(size=16)
    assert not np.array_equal(a, b)
