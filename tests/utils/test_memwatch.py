"""Memory instrumentation: RSS sampling and tracemalloc wrapping."""

from __future__ import annotations

from repro.utils.memwatch import PeakRSS, current_rss_bytes, traced_peak


class TestCurrentRSS:
    def test_positive_on_linux(self):
        # /proc/self/statm exists on every platform CI runs on; the
        # helper's 0 fallback is for exotic hosts only.
        assert current_rss_bytes() > 0


class TestPeakRSS:
    def test_tracks_baseline_and_peak(self):
        with PeakRSS(interval_s=0.001) as watch:
            blob = bytearray(8 * 2**20)
            blob[0] = 1
        assert watch.baseline_bytes > 0
        assert watch.peak_bytes >= watch.baseline_bytes
        assert watch.delta_bytes >= 0

    def test_thread_released_on_exit(self):
        with PeakRSS() as watch:
            assert watch._thread is not None and watch._thread.is_alive()
        assert watch._thread is None


class TestTracedPeak:
    def test_returns_result_and_peak(self):
        result, peak = traced_peak(lambda: sum(range(1000)))
        assert result == 499500
        assert peak > 0

    def test_peak_scales_with_allocation(self):
        _, small = traced_peak(lambda: bytearray(2**16))
        _, large = traced_peak(lambda: bytearray(2**24))
        assert large > small
