# Development conveniences for the SPLIT reproduction.

.PHONY: install test coverage typecheck bench bench-check profile profile-serve experiments results examples serve net-test chaos-test clean

install:
	pip install -e . --no-build-isolation

test:
	pytest tests/

# The same coverage gate CI enforces (needs pytest-cov: pip install -e .[test]).
coverage:
	pytest tests/ -q --cov=repro --cov-report=term-missing:skip-covered --cov-fail-under=85

# Strict typing on the kernel-facing layers (the CI gate; pip install
# -e .[typecheck] to get mypy). Skips gracefully where mypy is absent so
# the target is safe in minimal containers.
typecheck:
	@if command -v mypy >/dev/null 2>&1; then \
		mypy --strict src/repro/runtime src/repro/robustness; \
	else \
		echo "mypy not installed; skipping (pip install -e .[typecheck])"; \
	fi

# Full timed run; distils the raw dump into BENCH_<rev>.json (requests/sec,
# streaming speedup vs the list-backed queue, peak RSS of the 100k cell,
# cold/warm plan-store ratio) so successive runs leave a comparable trail.
bench:
	pytest benchmarks/ --benchmark-only --benchmark-json=.benchmarks.json
	python benchmarks/report.py .benchmarks.json .

# What CI runs: tier-1 tests plus every benchmark's assertions with the
# timing collection disabled (fast, and robust on shared runners), plus
# the 100k streaming throughput pin against BENCH_50545cc.json (within
# 10% of the pre-kernel baseline; see benchmarks/test_bench_regression.py),
# plus the recorded-trajectory diff: the newest committed BENCH_<rev>.json
# must not regress requests/sec by more than 10% against the pre-kernel
# baseline (python -m benchmarks.report --compare), and must carry all
# four headline cells — the 100k streaming engine pass, the live wire
# replay, the million-request fleet replay, and the kill-and-recover
# chaos replay — so none can silently drop out of the trajectory.
bench-check:
	pytest tests/ -q
	SPLIT_BENCH_PIN=1 pytest benchmarks/ -q --benchmark-disable
	python -m benchmarks.report --compare BENCH_50545cc.json --require stream_100k,server_replay,fleet_1m,fleet_chaos

# The 100k streaming cell under cProfile (top-25 by cumulative time) —
# the loop the fast-lane optimisation work is steered by. Accepts
# N/TOP overrides: make profile N=200000 TOP=40
N ?= 100000
TOP ?= 25
profile:
	python -m benchmarks.profile_stream $(N) $(TOP)

# The wire replay loop under cProfile — client and server endpoints on
# one profiled event loop (the kernel's engine thread is `make profile`'s
# job). CODEC/BATCH select the wire path: make profile-serve CODEC=json BATCH=1
SERVE_N ?= 5000
CODEC ?= binary-v2
BATCH ?= 512
profile-serve:
	python -m benchmarks.profile_serve $(SERVE_N) $(TOP) $(CODEC) $(BATCH)

# The wire-level serving suite (differential replay, protocol fuzzing,
# concurrency stress, backpressure) — CI runs this three times in a row
# as a flake gate; see docs/serving.md.
net-test:
	pytest tests/server -m net -q

# The fault-injection / failover suites across the same 3-seed matrix
# CI runs (SPLIT_CHAOS_SEED re-parametrizes the fault plans); see
# docs/robustness.md.
chaos-test:
	for seed in 5 11 23; do \
		echo "=== chaos suite seed=$$seed ==="; \
		SPLIT_CHAOS_SEED=$$seed pytest tests/ -m chaos -q -p no:cacheprovider || exit 1; \
	done

# Serve the framed TCP protocol locally (Ctrl-C to stop); see
# docs/serving.md for the client side. HOST/PORT/SCALE/MODELS overrides:
# make serve PORT=7200 MODELS=yolov2,resnet50
HOST ?= 127.0.0.1
PORT ?= 7100
SCALE ?= 1e-5
MODELS ?= yolov2,vgg19
serve:
	python -m repro.server.net --host $(HOST) --port $(PORT) --scale $(SCALE) --models $(MODELS)

experiments:
	python -m repro.experiments all

results:
	python -m repro.experiments all --out results/

examples:
	python examples/quickstart.py
	python examples/autonomous_driving.py
	python examples/splitting_explorer.py
	python examples/qos_comparison.py
	python examples/edge_cluster.py

clean:
	rm -rf results/ .pytest_cache .split-cache src/repro.egg-info
	find . -name __pycache__ -type d -exec rm -rf {} +
