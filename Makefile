# Development conveniences for the SPLIT reproduction.

.PHONY: install test coverage bench bench-check experiments results examples clean

install:
	pip install -e . --no-build-isolation

test:
	pytest tests/

# The same coverage gate CI enforces (needs pytest-cov: pip install -e .[test]).
coverage:
	pytest tests/ -q --cov=repro --cov-report=term-missing:skip-covered --cov-fail-under=85

bench:
	pytest benchmarks/ --benchmark-only

# What CI runs: tier-1 tests plus every benchmark's assertions with the
# timing collection disabled (fast, and robust on shared runners).
bench-check:
	pytest tests/ -q
	pytest benchmarks/ -q --benchmark-disable

experiments:
	python -m repro.experiments all

results:
	python -m repro.experiments all --out results/

examples:
	python examples/quickstart.py
	python examples/autonomous_driving.py
	python examples/splitting_explorer.py
	python examples/qos_comparison.py
	python examples/edge_cluster.py

clean:
	rm -rf results/ .pytest_cache .split-cache src/repro.egg-info
	find . -name __pycache__ -type d -exec rm -rf {} +
